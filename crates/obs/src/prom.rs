//! Prometheus text exposition (version 0.0.4) and a small lint checker
//! for it.
//!
//! The exposition is written once, at [`crate::Obs::finish`] — this is a
//! batch synthesis tool, not a long-lived server, so "scrape" means
//! "read the file the run left behind". The lint checker is what CI runs
//! over the emitted file; it validates exactly the subset of the format
//! this crate produces.

use crate::metrics::{bucket_bound, Metric, NUM_BUCKETS};

/// Renders a metric snapshot as Prometheus text exposition.
pub fn render(snapshot: &[(String, &'static str, Metric)]) -> String {
    let mut out = String::new();
    for (name, help, metric) in snapshot {
        if !help.is_empty() {
            out.push_str(&format!("# HELP {name} {help}\n"));
        }
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
            }
            Metric::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let buckets = h.snapshot();
                let mut cum = 0u64;
                for (i, b) in buckets.iter().enumerate().take(NUM_BUCKETS) {
                    cum += b;
                    // Power-of-two buckets: only emit non-empty prefixes to
                    // keep the file readable; the +Inf bucket always closes
                    // the series.
                    if *b != 0 || i == 0 {
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cum}\n",
                            bucket_bound(i)
                        ));
                    }
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                out.push_str(&format!("{name}_sum {}\n", h.sum()));
                out.push_str(&format!("{name}_count {}\n", h.count()));
            }
        }
    }
    out
}

/// Lints Prometheus exposition text: every sample must belong to a
/// preceding `# TYPE` declaration, names must be valid, histogram series
/// must be cumulative and closed by `+Inf`, and `_count` must equal the
/// `+Inf` bucket. Returns the number of samples checked.
pub fn lint(text: &str) -> Result<usize, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    let mut current: Option<(String, String)> = None; // (name, type)
    let mut samples = 0usize;
    let mut hist_cum: Option<u64> = None;
    let mut hist_inf: Option<u64> = None;

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or(format!("line {n}: TYPE without a name"))?;
            let kind = it.next().ok_or(format!("line {n}: TYPE {name} without a kind"))?;
            if !valid_name(name) {
                return Err(format!("line {n}: invalid metric name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown metric type {kind:?}"));
            }
            current = Some((name.to_string(), kind.to_string()));
            hist_cum = None;
            hist_inf = None;
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (series, value) =
            line.rsplit_once(' ').ok_or(format!("line {n}: sample without a value"))?;
        let value: f64 =
            value.parse().map_err(|_| format!("line {n}: unparseable value {value:?}"))?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels =
                    rest.strip_suffix('}').ok_or(format!("line {n}: unclosed label set"))?;
                (name, Some(labels))
            }
            None => (series, None),
        };
        if !valid_name(name) {
            return Err(format!("line {n}: invalid sample name {name:?}"));
        }
        let (decl_name, decl_kind) =
            current.as_ref().ok_or(format!("line {n}: sample {name} before any # TYPE"))?;
        let belongs = match decl_kind.as_str() {
            "histogram" => {
                name == decl_name
                    || name == format!("{decl_name}_bucket")
                    || name == format!("{decl_name}_sum")
                    || name == format!("{decl_name}_count")
            }
            _ => name == decl_name,
        };
        if !belongs {
            return Err(format!("line {n}: sample {name} does not match # TYPE {decl_name}"));
        }
        if decl_kind == "histogram" && name.ends_with("_bucket") {
            let labels = labels.ok_or(format!("line {n}: histogram bucket without le label"))?;
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|s| s.strip_suffix('"'))
                .ok_or(format!("line {n}: bucket label must be le=\"…\", got {labels:?}"))?;
            let cum = value as u64;
            if let Some(prev) = hist_cum {
                if cum < prev {
                    return Err(format!("line {n}: histogram buckets not cumulative"));
                }
            }
            hist_cum = Some(cum);
            if le == "+Inf" {
                hist_inf = Some(cum);
            }
        }
        if decl_kind == "histogram" && name.ends_with("_count") {
            let inf = hist_inf.ok_or(format!("line {n}: histogram _count before +Inf bucket"))?;
            if value as u64 != inf {
                return Err(format!(
                    "line {n}: _count {} disagrees with +Inf bucket {inf}",
                    value as u64
                ));
            }
        }
        if decl_kind == "counter" && value < 0.0 {
            return Err(format!("line {n}: counter {name} is negative"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn rendered_exposition_passes_the_linter() {
        let r = Registry::new();
        r.counter("als_cpc_violations_total", "CPC-violating nodes recut").add(12);
        r.gauge("als_pool_threads", "configured worker threads").set(4);
        let h = r.histogram("als_journal_append_us", "journal append latency");
        for v in [3, 90, 1500] {
            h.observe(v);
        }
        let text = render(&r.snapshot());
        let samples = lint(&text).expect("lint must pass on our own output");
        assert!(samples >= 6, "{text}");
        assert!(text.contains("als_journal_append_us_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("als_journal_append_us_sum 1593"), "{text}");
    }

    #[test]
    fn linter_rejects_malformed_text() {
        assert!(lint("als_x 1\n").is_err(), "sample before TYPE");
        assert!(lint("# TYPE als_x counter\nals_y 1\n").is_err(), "name mismatch");
        assert!(lint("# TYPE als_x wibble\n").is_err(), "unknown type");
        assert!(lint("# TYPE als_x counter\nals_x -1\n").is_err(), "negative counter");
        let bad_hist = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n";
        assert!(lint(bad_hist).is_err(), "non-cumulative buckets");
        let bad_count = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n";
        assert!(lint(bad_count).is_err(), "_count != +Inf");
    }

    #[test]
    fn empty_histogram_still_closes_with_inf() {
        let r = Registry::new();
        r.histogram("h", "");
        let text = render(&r.snapshot());
        assert!(text.contains("h_bucket{le=\"+Inf\"} 0"));
        lint(&text).unwrap();
    }
}
