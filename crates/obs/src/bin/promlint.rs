//! `promlint` — lints a Prometheus text exposition file emitted by the
//! observability layer (`als synth … --metrics <path>`).
//!
//! ```text
//! promlint <metrics.prom> [more.prom …]
//! ```
//!
//! Exits nonzero with a diagnostic on the first malformed file; prints the
//! sample count per file otherwise. CI runs this over the file a traced
//! tier-1 synthesis run leaves behind.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: promlint <metrics.prom> [more.prom …]");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("promlint: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match als_obs::prom::lint(&text) {
            Ok(samples) => println!("{path}: OK ({samples} samples)"),
            Err(detail) => {
                eprintln!("promlint: {path}: {detail}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
