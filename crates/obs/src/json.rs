//! A minimal JSON document model: parse, navigate, render.
//!
//! The workspace is dependency-free, so the service wire protocol and the
//! `--json` report mode cannot lean on serde. This module is the one place
//! that knows JSON syntax; typed wire structs (`als_serve::api`) convert
//! to and from [`Json`] values explicitly, which keeps the wire contract
//! reviewable in one file per direction instead of scattered `format!`s.
//!
//! Numbers keep their integer-ness: a token without `.`, `e` or a sign
//! that fits `u64` parses to [`Json::UInt`], everything else to
//! [`Json::Num`]. This matters for 64-bit seeds and fingerprints, which a
//! single `f64` representation would silently round.
//!
//! Object members preserve insertion order, so rendering is deterministic
//! and round-trips byte-identically for documents this crate produced.

use std::fmt;

use crate::trace::push_json_str;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer that fits `u64` exactly.
    UInt(u64),
    /// Any other number (negative, fractional, exponent).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Starts an empty object (builder-style entry point).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a member to an object and returns it (builder-style). Panics
    /// only in debug builds when `self` is not an object.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Adds (or replaces) a member on an object in place; no-op on
    /// non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        if let Json::Obj(members) = self {
            let value = value.into();
            match members.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => members.push((key.to_string(), value)),
            }
        } else {
            debug_assert!(false, "Json::set on a non-object");
        }
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer (or an integral float
    /// that converts exactly).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the value as compact JSON (no whitespace). `NaN` and
    /// infinities — which JSON cannot express — render as `null`.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => push_json_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(inner) => inner.into(),
            None => Json::Null,
        }
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 leaves pos one past the last digit; the
                            // shared increment below is for 1-byte escapes.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("bad number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in ["null", "true", "false", "0", "42", "-3.5", "\"hi\"", "1e3"] {
            let v = parse(doc).unwrap();
            let back = parse(&v.render()).unwrap();
            assert_eq!(v, back, "{doc}");
        }
    }

    #[test]
    fn integers_keep_full_u64_precision() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Json::UInt(u64::MAX));
        assert_eq!(v.render(), "18446744073709551615");
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn objects_preserve_order_and_navigate() {
        let v = parse(r#"{"b":1,"a":{"x":[1,2,{"y":"z"}]},"c":null}"#).unwrap();
        assert_eq!(v.render(), r#"{"b":1,"a":{"x":[1,2,{"y":"z"}]},"c":null}"#);
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(1));
        let arr = v.get("a").and_then(|a| a.get("x")).and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("y").and_then(Json::as_str), Some("z"));
        assert!(v.get("c").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn builder_constructs_and_replaces() {
        let v = Json::obj().with("a", 1u64).with("b", "x").with("a", 2u64);
        assert_eq!(v.render(), r#"{"a":2,"b":"x"}"#);
        assert_eq!(Json::from(Some(3u64)).render(), "3");
        assert_eq!(Json::from(None::<u64>).render(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let tricky = "a\"b\\c\nd\te\u{1}f→𝄞";
        let rendered = Json::Str(tricky.to_string()).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(tricky));
        // explicit escapes, including a surrogate pair
        let v = parse(r#""\u0041\ud834\udd1e\/""#).unwrap();
        assert_eq!(v.as_str(), Some("A𝄞/"));
    }

    #[test]
    fn floats_render_shortest_round_trip() {
        assert_eq!(Json::Num(0.1).render(), "0.1");
        assert_eq!(Json::Num(2.0).render(), "2.0");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        let v = parse("3.141592653589793").unwrap();
        assert_eq!(v.as_f64(), Some(std::f64::consts::PI));
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for doc in [
            "",
            "{",
            "[1,",
            "nul",
            "\"abc",
            "{\"a\"}",
            "{\"a\":1,}",
            "[1 2]",
            "01a",
            "\"\\q\"",
            "\"\\ud800\"",
            "1 2",
        ] {
            let err = parse(doc);
            assert!(err.is_err(), "{doc:?} should fail");
        }
        let e = parse("[1, x]").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn existing_jsonl_span_lines_parse() {
        // The line shape tests/obs.rs pins for the trace sink.
        let line = r#"{"t":"span","name":"cuts","path":"flow/iteration/phase1/cuts","id":7,"parent":3,"thread":0,"start_ns":123,"dur_ns":456,"counts":{"s_v":9}}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("path").and_then(Json::as_str), Some("flow/iteration/phase1/cuts"));
        assert_eq!(v.get("counts").and_then(|c| c.get("s_v")).and_then(Json::as_u64), Some(9));
    }
}
