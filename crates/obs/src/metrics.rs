//! The typed metrics registry: counters, gauges and histograms with fixed
//! power-of-two buckets.
//!
//! Handles are cheap `Option<Arc<..>>` wrappers: a handle obtained from a
//! disabled [`crate::Obs`] carries `None` and every operation on it is an
//! inlined no-op, so instrumented hot paths cost nothing when observability
//! is off. Enabled handles update lock-free atomics; the registry itself is
//! only locked at registration and export time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket `i` counts values in
/// `(2^(i-1), 2^i]` (bucket 0 holds zero and one). 64 buckets cover the
/// whole `u64` range, so no observation is ever dropped.
pub const NUM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that ignores every update (the disabled path).
    pub const fn noop() -> Counter {
        Counter(None)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Whether updates are recorded anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// A gauge holding the last value set.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that ignores every update (the disabled path).
    pub const fn noop() -> Gauge {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Lock-free histogram state shared by every clone of a [`Histogram`].
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A histogram over `u64` observations with fixed power-of-two buckets:
/// bucket upper bounds are `1, 2, 4, …, 2^63` (the last bucket absorbs
/// everything larger). Deterministic by construction — bucket boundaries
/// never depend on the data or on wall-clock state.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

/// The bucket index a value lands in: `0` for 0 and 1, else
/// `ceil(log2(v))`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i` (`2^i`), saturating at
/// `u64::MAX` for the last bucket.
pub fn bucket_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// A handle that ignores every update (the disabled path).
    pub const fn noop() -> Histogram {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a [`std::time::Duration`] in microseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        if self.0.is_some() {
            self.observe(d.as_micros() as u64);
        }
    }

    /// Number of observations (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of all observed values (0 for a disabled handle).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }

    /// Whether observations are recorded anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Per-bucket counts (non-cumulative), empty for a disabled handle.
    pub fn snapshot(&self) -> Vec<u64> {
        match &self.0 {
            None => Vec::new(),
            Some(h) => h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A monotonic counter.
    Counter(Counter),
    /// A last-value gauge.
    Gauge(Gauge),
    /// A power-of-two-bucketed histogram.
    Histogram(Histogram),
}

/// Name → metric map. Registration is idempotent: asking twice for the
/// same name returns handles backed by the same atomics, so call sites
/// never need to coordinate.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    help: Mutex<BTreeMap<String, &'static str>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // A poisoned registry lock can only come from a panic inside this
        // module's short critical sections; the map is still structurally
        // sound, so keep serving it.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn note_help(&self, name: &str, help: &'static str) {
        let mut map = self.help.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_insert(help);
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str, help: &'static str) -> Counter {
        self.note_help(name, help);
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Some(Arc::new(AtomicU64::new(0))))))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::noop(),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, help: &'static str) -> Gauge {
        self.note_help(name, help);
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Some(Arc::new(AtomicU64::new(0))))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::noop(),
        }
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &str, help: &'static str) -> Histogram {
        self.note_help(name, help);
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram(Some(Arc::new(HistogramCore::new())))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::noop(),
        }
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, &'static str, Metric)> {
        let help = self.help.lock().unwrap_or_else(|e| e.into_inner());
        self.lock()
            .iter()
            .map(|(name, m)| (name.clone(), help.get(name).copied().unwrap_or(""), m.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handles_ignore_updates() {
        let c = Counter::noop();
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(7);
        assert_eq!(g.get(), 0);
        let h = Histogram::noop();
        h.observe(42);
        assert_eq!(h.count(), 0);
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn registry_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("x_total", "");
        let b = r.counter("x_total", "");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(10), 1024);
        assert_eq!(bucket_bound(63), u64::MAX);
    }

    #[test]
    fn histogram_accumulates_sum_count_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_us", "");
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let snap = h.snapshot();
        assert_eq!(snap[0], 2); // 0 and 1
        assert_eq!(snap[1], 1); // 2
        assert_eq!(snap[2], 1); // 3
        assert_eq!(snap[10], 1); // 1000 ≤ 1024
    }

    #[test]
    fn type_mismatch_returns_noop_not_panic() {
        let r = Registry::new();
        let _c = r.counter("m", "");
        let g = r.gauge("m", "");
        g.set(9);
        assert_eq!(g.get(), 0, "mismatched re-registration degrades to no-op");
    }
}
