//! Micro-benchmark: full CPM versus the partial CPM over `N(S_cand)` —
//! the paper's phase-two step 2 saving — plus the depth-one VECBEE CPM.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use als_aig::NodeId;
use als_circuits::{benchmark, BenchmarkScale};
use als_cuts::CutState;
use als_sim::{PatternSet, Simulator};

fn bench_cpm(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpm");
    group.sample_size(10);
    for name in ["sm9x8", "mult16"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let patterns = PatternSet::random(aig.num_inputs(), 32, 7);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);

        group.bench_function(format!("full/{name}"), |b| {
            b.iter(|| black_box(als_cpm::compute_full(&aig, &sim, &cuts).unwrap()));
        });

        // S_cand = 60 mid-circuit nodes, as in phase two.
        let s_cand: Vec<NodeId> = aig.iter_ands().skip(aig.num_ands() / 3).take(60).collect();
        group.bench_function(format!("partial60/{name}"), |b| {
            b.iter(|| black_box(als_cpm::compute_partial(&aig, &sim, &cuts, &s_cand).unwrap()));
        });

        group.bench_function(format!("depth_one/{name}"), |b| {
            b.iter(|| black_box(als_cpm::compute_depth_one(&aig, &sim)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cpm);
criterion_main!(benches);
