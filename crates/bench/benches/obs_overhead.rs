//! Observability overhead on a full DP-SA run.
//!
//! Two timings per circuit, best-of-`RUNS` each:
//!
//! * **off** — `Obs::disabled()`, the default everywhere. Every
//!   instrumentation point is an inlined `Option::None` check.
//! * **on** — full observability: JSONL span trace plus Prometheus export
//!   to temp files. This bounds what `--trace`/`--metrics` costs.
//!
//! Run-to-run wall-clock noise on a busy machine (several percent) swamps
//! the disabled path's true cost, so that cost is measured at the
//! primitive level instead: a micro-loop times one disabled
//! span-open/count/finish cycle plus a disabled counter increment, and the
//! per-run overhead is that unit cost scaled by the number of span events
//! the run actually records (counted from the enabled run's trace). The
//! resulting `disabled_overhead_pct` is deterministic and far below 1%.
//!
//! Both runs are asserted byte-identical, and the numbers land in
//! `BENCH_obs.json` (override the path with `ALS_BENCH_OUT`).

use std::time::Instant;

use als_circuits::{benchmark, BenchmarkScale};
use als_engine::{flows, FlowConfig, FlowResult};
use als_error::MetricKind;
use als_obs::{Obs, ObsConfig};

const RUNS: usize = 3;

/// Best-of-`RUNS` wall time of `f` in milliseconds (after one warmup).
fn time_ms<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    let result = f();
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (result, best)
}

fn assert_identical(a: &FlowResult, b: &FlowResult, name: &str, what: &str) {
    assert_eq!(a.lacs_applied(), b.lacs_applied(), "{name}: {what} changed the run");
    assert_eq!(a.final_error.to_bits(), b.final_error.to_bits(), "{name}: {what}");
    assert_eq!(
        als_aig::io::to_ascii_string(&a.circuit),
        als_aig::io::to_ascii_string(&b.circuit),
        "{name}: {what} changed the circuit"
    );
}

/// Cost of one fully-disabled instrumentation point, in nanoseconds: a
/// span open + attached count + finish, plus a counter increment — the
/// work every instrumented site pays when observability is off.
fn disabled_site_ns() -> f64 {
    let obs = Obs::disabled();
    let counter = obs.counter("bench_disabled_total", "");
    const ITERS: u32 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..ITERS {
        let mut span = obs.span("bench");
        span.count("k", u64::from(i));
        std::hint::black_box(span.finish());
        counter.inc();
    }
    t0.elapsed().as_secs_f64() * 1e9 / f64::from(ITERS)
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return; // `cargo test` runs bench binaries without --bench
    }
    let tmp = std::env::temp_dir();
    let trace_path = tmp.join(format!("als-bench-obs-{}.jsonl", std::process::id()));
    let prom_path = tmp.join(format!("als-bench-obs-{}.prom", std::process::id()));

    let site_ns = disabled_site_ns();
    println!("bench: obs/site    disabled span+count+finish+counter = {site_ns:.1} ns");

    let mut rows: Vec<String> = Vec::new();
    for name in ["adder", "sm9x8", "mult16"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let cfg = FlowConfig::new(MetricKind::Med, 4.0).with_patterns(1024).with_threads(1);
        let run = |cfg: FlowConfig| flows::by_name("dpsa", cfg).unwrap().run(&aig).unwrap();

        let (off, off_ms) = time_ms(|| run(cfg.clone()));
        let (on, on_ms) = time_ms(|| {
            let obs = Obs::new(ObsConfig {
                trace: Some(trace_path.clone()),
                metrics: Some(prom_path.clone()),
                tree: false,
            })
            .expect("observability sinks");
            let res = run(cfg.clone().with_obs(obs.clone()));
            obs.finish().expect("observability export");
            res
        });
        assert_identical(&off, &on, name, "observability");

        let trace = std::fs::read_to_string(&trace_path).unwrap_or_default();
        let spans = trace.lines().count();
        let trace_bytes = trace.len();
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&prom_path).ok();
        // Disabled-path cost: every recorded span corresponds to one
        // instrumentation site executed; scale the measured unit cost.
        let disabled_pct = 100.0 * (spans as f64 * site_ns) / (off_ms * 1e6).max(1e-9);
        let enabled_pct = 100.0 * (on_ms - off_ms).max(0.0) / off_ms.max(1e-9);
        assert!(disabled_pct < 1.0, "{name}: disabled-path overhead {disabled_pct:.3}% >= 1%");
        println!(
            "bench: obs/{name:<7} off {off_ms:>9.3} ms  on {on_ms:>9.3} ms  \
             disabled {disabled_pct:>6.3}%  enabled {enabled_pct:>5.1}%  \
             ({spans} spans, {trace_bytes} B trace)"
        );
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"gates\": {}, \"off_ms\": {off_ms:.3}, \
             \"on_ms\": {on_ms:.3}, \"spans\": {spans}, \
             \"disabled_overhead_pct\": {disabled_pct:.4}, \
             \"enabled_overhead_pct\": {enabled_pct:.2}, \"trace_bytes\": {trace_bytes}}}",
            aig.num_ands()
        ));
    }

    let json = format!(
        "{{\n  \"flow\": \"DP-SA\",\n  \"metric\": \"med\",\n  \"bound\": 4.0,\n  \
         \"patterns\": 1024,\n  \"runs\": {RUNS},\n  \
         \"disabled_site_ns\": {site_ns:.1},\n  \"circuits\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = std::env::var("ALS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_obs.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_obs.json");
    println!("bench: observability overhead -> {out}");
}
