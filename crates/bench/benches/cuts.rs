//! Micro-benchmark: full disjoint-cut computation versus the incremental
//! CPC-based update — the paper's phase-two step 1 saving.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use als_circuits::{benchmark, BenchmarkScale};
use als_cuts::CutState;
use als_lac::Lac;

fn bench_cuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuts");
    group.sample_size(10);
    for name in ["sm9x8", "mult16", "adder"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        group.bench_function(format!("full/{name}"), |b| {
            b.iter(|| black_box(CutState::compute(&aig)));
        });

        // Incremental: apply one constant LAC and refresh.
        group.bench_function(format!("incremental/{name}"), |b| {
            b.iter_batched(
                || {
                    let mut a = aig.clone();
                    let state = CutState::compute(&a);
                    let target = a.iter_ands().nth(a.num_ands() / 2).unwrap();
                    let rec = Lac::const0(target).apply(&mut a);
                    (a, state, rec)
                },
                |(a, mut state, rec)| {
                    state.update_after(&a, &rec);
                    black_box(state.last_update_size())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cuts);
criterion_main!(benches);
