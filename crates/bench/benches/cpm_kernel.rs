//! Arena CPM + fused error kernels vs. the boxed baseline.
//!
//! Rebuilds the pre-arena data layout locally — one heap-allocated
//! `Vec<(u32, PackedBits)>` per CPM row, per-candidate materialised flip
//! vectors through `eval_flips` — and compares it against the shipped
//! arena path (`compute_full` + `eval_flips_sparse`) on both phases the
//! layout touches:
//!
//! * **build** — the full CPM construction (step 2),
//! * **eval** — batch error estimation of every constant LAC (step 3).
//!
//! A counting global allocator reports allocation counts and peak live
//! bytes per phase alongside best-of-N wall times, and the two paths are
//! asserted to produce bit-identical error estimates before any number is
//! written. Results go to `BENCH_cpm_kernel.json` (`ALS_BENCH_OUT`
//! overrides). Like the other benches, the binary is inert without the
//! `--bench` argument `cargo bench` passes.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::time::Instant;

use als_aig::Aig;
use als_circuits::{benchmark, BenchmarkScale};
use als_cpm::FlipSim;
use als_cuts::{CutMember, CutState};
use als_error::{unsigned_weights, ErrorState, FlipVec, MetricKind, SparseFlip};
use als_lac::{generate, CandidateConfig, Lac};
use als_sim::{PackedBits, PatternSet, Simulator};

// ---------------------------------------------------------------------------
// Counting allocator

struct Counting;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        let live = LIVE.fetch_add(layout.size(), Relaxed) + layout.size();
        PEAK.fetch_max(live, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        if new_size >= layout.size() {
            let grow = new_size - layout.size();
            let live = LIVE.fetch_add(grow, Relaxed) + grow;
            PEAK.fetch_max(live, Relaxed);
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

/// Allocation count and peak live bytes of one run of `f`, measured above
/// the live-byte floor at entry.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, usize, usize) {
    let live = LIVE.load(Relaxed);
    PEAK.store(live, Relaxed);
    let allocs0 = ALLOCS.load(Relaxed);
    let result = f();
    let allocs = ALLOCS.load(Relaxed) - allocs0;
    let peak = PEAK.load(Relaxed).saturating_sub(live);
    (result, allocs, peak)
}

const RUNS: usize = 7;

/// Best-of-`RUNS` wall times of two competing implementations, interleaved
/// A/B/A/B per repetition (after one warmup each) so host-load drift hits
/// both sides equally. Returns `(best_a_ms, best_b_ms)`.
fn time_pair_ms<A, B>(mut a: impl FnMut() -> A, mut b: impl FnMut() -> B) -> (f64, f64) {
    std::hint::black_box(a());
    std::hint::black_box(b());
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..RUNS {
        let t0 = Instant::now();
        std::hint::black_box(a());
        best_a = best_a.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        std::hint::black_box(b());
        best_b = best_b.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best_a, best_b)
}

// ---------------------------------------------------------------------------
// Boxed baseline: the pre-arena layout, one heap vector per row entry.

type BoxedRow = Vec<(u32, PackedBits)>;
type BoxedCpm = Vec<Option<BoxedRow>>;

fn boxed_compute_full(aig: &Aig, sim: &Simulator, cuts: &CutState) -> BoxedCpm {
    let mut cpm: BoxedCpm = vec![None; aig.num_nodes()];
    let mut flipsim = FlipSim::new(aig.num_nodes(), sim.num_words());
    let order = als_aig::topo::topo_order(aig);
    for &n in order.iter().rev() {
        let cut = cuts.get_cut(n).expect("cut exists for every live node");
        let diffs = flipsim.boolean_differences(aig, sim, cuts.ranks(), n, cut);
        let mut row: BoxedRow = Vec::new();
        for (member, b) in diffs {
            match member {
                CutMember::Output(o) => row.push((o, b)),
                CutMember::Node(t) => {
                    let trow = cpm[t.index()].as_ref().expect("member row precedes");
                    for (o, p) in trow {
                        row.push((*o, b.and(p)));
                    }
                }
            }
        }
        row.sort_by_key(|(o, _)| *o);
        cpm[n.index()] = Some(row);
    }
    cpm
}

fn boxed_eval(sim: &Simulator, state: &ErrorState, cpm: &BoxedCpm, lacs: &[Lac]) -> Vec<f64> {
    lacs.iter()
        .map(|lac| {
            let row = cpm[lac.target.index()].as_ref().expect("row exists");
            let d = lac.change_vector(sim);
            let flips: Vec<FlipVec> = row
                .iter()
                .filter_map(|(o, p)| {
                    let bits = d.and(p);
                    (!bits.is_zero()).then_some(FlipVec { output: *o as usize, bits })
                })
                .collect();
            state.eval_flips(&flips)
        })
        .collect()
}

fn arena_eval(sim: &Simulator, state: &ErrorState, cpm: &als_cpm::Cpm, lacs: &[Lac]) -> Vec<f64> {
    let mut d = PackedBits::zeros(sim.num_words());
    let mut flips: Vec<SparseFlip<'_>> = Vec::new();
    lacs.iter()
        .map(|lac| {
            let row = cpm.row(lac.target).expect("row exists");
            lac.change_vector_into(sim, &mut d);
            flips.clear();
            flips.extend(row.iter().map(|(o, bits)| SparseFlip { output: o as usize, bits }));
            state.eval_flips_sparse(&d, &flips)
        })
        .collect()
}

/// The pre-SIMD eval path: per-candidate scalar sparse kernel, no dedup.
fn scalar_eval(sim: &Simulator, state: &ErrorState, cpm: &als_cpm::Cpm, lacs: &[Lac]) -> Vec<f64> {
    let mut d = PackedBits::zeros(sim.num_words());
    let mut flips: Vec<SparseFlip<'_>> = Vec::new();
    lacs.iter()
        .map(|lac| {
            let row = cpm.row(lac.target).expect("row exists");
            lac.change_vector_into(sim, &mut d);
            flips.clear();
            flips.extend(row.iter().map(|(o, bits)| SparseFlip { output: o as usize, bits }));
            state.eval_flips_sparse_scalar(&d, &flips)
        })
        .collect()
}

/// This PR's eval path: structural dedup over the candidates (hash of the
/// tail-masked change vector + the CPM row fingerprint, exact-verified
/// before merging — the same keying the engine uses), then the chunked
/// (auto-vectorised/AVX2) sparse kernel once per class. Returns the
/// per-candidate errors plus the number of dedup hits.
fn deduped_chunked_eval(
    sim: &Simulator,
    state: &ErrorState,
    cpm: &als_cpm::Cpm,
    lacs: &[Lac],
) -> (Vec<f64>, usize) {
    let num_words = sim.num_words();
    let tail = als_sim::tail_mask(sim.num_patterns());
    let mut d = PackedBits::zeros(num_words);
    let mut d_arena: Vec<u64> = vec![0; lacs.len() * num_words];
    let mut keys: Vec<Option<(u64, u64)>> = Vec::with_capacity(lacs.len());
    let mut fp_memo: std::collections::HashMap<als_aig::NodeId, u64> =
        std::collections::HashMap::new();
    for (i, lac) in lacs.iter().enumerate() {
        let row = cpm.row(lac.target).expect("row exists");
        lac.change_vector_into(sim, &mut d);
        let dst = &mut d_arena[i * num_words..(i + 1) * num_words];
        dst.copy_from_slice(d.words());
        if let Some(last) = dst.last_mut() {
            *last &= tail;
        }
        let fp = *fp_memo.entry(lac.target).or_insert_with(|| row.fingerprint());
        keys.push(Some((als_cuts::hash_words(dst), fp)));
    }
    let d_of = |i: usize| &d_arena[i * num_words..(i + 1) * num_words];
    let classes = als_lac::DedupClasses::build(
        lacs.len(),
        |i| keys[i],
        |rep, i| d_of(rep) == d_of(i) && cpm.row(lacs[rep].target) == cpm.row(lacs[i].target),
    );
    let mut flips: Vec<SparseFlip<'_>> = Vec::new();
    let rep_errs: Vec<f64> = classes
        .reps()
        .iter()
        .map(|&i| {
            let lac = &lacs[i];
            let row = cpm.row(lac.target).expect("row exists");
            lac.change_vector_into(sim, &mut d);
            flips.clear();
            flips.extend(row.iter().map(|(o, bits)| SparseFlip { output: o as usize, bits }));
            state.eval_flips_sparse_chunked(&d, &flips)
        })
        .collect();
    let errs = (0..lacs.len())
        .map(|i| rep_errs[classes.class_of(i).expect("every candidate keyed")])
        .collect();
    (errs, classes.hits())
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return; // `cargo test` runs bench binaries without --bench
    }
    const PATTERN_WORDS: usize = 32; // 2048 patterns

    let mut rows: Vec<String> = Vec::new();
    for name in ["adder", "sm9x8", "mult16"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let patterns = PatternSet::random(aig.num_inputs(), PATTERN_WORDS, 7);
        let sim = Simulator::new(&aig, &patterns);
        let cuts = CutState::compute(&aig);
        let golden: Vec<PackedBits> =
            (0..aig.num_outputs()).map(|o| sim.output_value(&aig, o)).collect();
        let state = ErrorState::new(
            MetricKind::Med,
            unsigned_weights(aig.num_outputs()),
            golden.clone(),
            &golden,
        );
        // the paper's step-3 workload: constants plus SASIMI substitutions
        let lacs = generate(&aig, &sim, &CandidateConfig::sasimi(8), None);

        // correctness gate: the two layouts must agree bit-for-bit
        let boxed_cpm = boxed_compute_full(&aig, &sim, &cuts);
        let arena_cpm = als_cpm::compute_full(&aig, &sim, &cuts).expect("cpm");
        let boxed_errs = boxed_eval(&sim, &state, &boxed_cpm, &lacs);
        let arena_errs = arena_eval(&sim, &state, &arena_cpm, &lacs);
        for (i, (a, b)) in boxed_errs.iter().zip(&arena_errs).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: {:?} diverges", lacs[i]);
        }
        drop((boxed_cpm, arena_cpm, boxed_errs, arena_errs));

        // wall times, best of RUNS, A/B-interleaved against host drift
        let (boxed_build_ms, arena_build_ms) = time_pair_ms(
            || boxed_compute_full(&aig, &sim, &cuts),
            || als_cpm::compute_full(&aig, &sim, &cuts).expect("cpm"),
        );
        let boxed_cpm = boxed_compute_full(&aig, &sim, &cuts);
        let arena_cpm = als_cpm::compute_full(&aig, &sim, &cuts).expect("cpm");
        let (boxed_eval_ms, arena_eval_ms) = time_pair_ms(
            || boxed_eval(&sim, &state, &boxed_cpm, &lacs),
            || arena_eval(&sim, &state, &arena_cpm, &lacs),
        );

        // this PR's kernel work: scalar per-candidate sparse eval vs the
        // chunked kernel behind structural dedup. Bit-identity gate first.
        let scalar_errs = scalar_eval(&sim, &state, &arena_cpm, &lacs);
        let (dedup_errs, dedup_hits) = deduped_chunked_eval(&sim, &state, &arena_cpm, &lacs);
        for (i, (a, b)) in scalar_errs.iter().zip(&dedup_errs).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: {:?} simd+dedup diverges", lacs[i]);
        }
        drop((scalar_errs, dedup_errs));
        let (scalar_ms, simd_dedup_ms) = time_pair_ms(
            || scalar_eval(&sim, &state, &arena_cpm, &lacs),
            || deduped_chunked_eval(&sim, &state, &arena_cpm, &lacs),
        );
        drop((boxed_cpm, arena_cpm));

        // allocation behaviour, single counted run per phase
        let (boxed_cpm, boxed_build_allocs, boxed_build_peak) =
            count_allocs(|| boxed_compute_full(&aig, &sim, &cuts));
        let (arena_cpm, arena_build_allocs, arena_build_peak) =
            count_allocs(|| als_cpm::compute_full(&aig, &sim, &cuts).expect("cpm"));
        let (_, boxed_eval_allocs, _) =
            count_allocs(|| boxed_eval(&sim, &state, &boxed_cpm, &lacs));
        let (_, arena_eval_allocs, _) =
            count_allocs(|| arena_eval(&sim, &state, &arena_cpm, &lacs));

        let build_speedup = boxed_build_ms / arena_build_ms.max(1e-9);
        let eval_speedup = boxed_eval_ms / arena_eval_ms.max(1e-9);
        let sparse_speedup = scalar_ms / simd_dedup_ms.max(1e-9);
        println!(
            "bench: cpm_kernel/{name:<7} build {boxed_build_ms:>8.3} -> {arena_build_ms:>8.3} ms \
             ({build_speedup:.2}x, {boxed_build_allocs} -> {arena_build_allocs} allocs)  \
             eval {boxed_eval_ms:>8.3} -> {arena_eval_ms:>8.3} ms \
             ({eval_speedup:.2}x, {boxed_eval_allocs} -> {arena_eval_allocs} allocs)  \
             sparse {scalar_ms:>8.3} -> {simd_dedup_ms:>8.3} ms \
             ({sparse_speedup:.2}x, {dedup_hits} dedup hits)"
        );
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"gates\": {}, \"lacs\": {}, \
             \"build\": {{\"boxed_ms\": {boxed_build_ms:.3}, \"arena_ms\": {arena_build_ms:.3}, \
             \"speedup\": {build_speedup:.3}, \"boxed_allocs\": {boxed_build_allocs}, \
             \"arena_allocs\": {arena_build_allocs}, \"boxed_peak_bytes\": {boxed_build_peak}, \
             \"arena_peak_bytes\": {arena_build_peak}}}, \
             \"eval\": {{\"boxed_ms\": {boxed_eval_ms:.3}, \"arena_ms\": {arena_eval_ms:.3}, \
             \"speedup\": {eval_speedup:.3}, \"boxed_allocs\": {boxed_eval_allocs}, \
             \"arena_allocs\": {arena_eval_allocs}}}, \
             \"sparse_eval\": {{\"scalar_ms\": {scalar_ms:.3}, \
             \"simd_dedup_ms\": {simd_dedup_ms:.3}, \"speedup\": {sparse_speedup:.3}, \
             \"dedup_hits\": {dedup_hits}}}}}",
            aig.num_ands(),
            lacs.len()
        ));
    }

    let json = format!(
        "{{\n  \"metric\": \"med\",\n  \"pattern_words\": {PATTERN_WORDS},\n  \
         \"runs\": {RUNS},\n  \"note\": \"boxed = pre-arena layout (Vec<(u32, PackedBits)> \
         rows, materialised flip vectors); arena = flat word arena + eval_flips_sparse; \
         sparse_eval compares the scalar per-candidate kernel against the chunked \
         (auto-vectorised/AVX2) kernel behind structural dedup; all paths asserted \
         bit-identical before timing\",\n  \"circuits\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = std::env::var("ALS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_cpm_kernel.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_cpm_kernel.json");
    println!("bench: cpm kernel -> {out}");
}
