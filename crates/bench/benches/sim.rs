//! Micro-benchmark: full bit-parallel simulation versus incremental
//! fanout-cone resimulation after a LAC.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use als_circuits::{benchmark, BenchmarkScale};
use als_lac::Lac;
use als_sim::{PatternSet, Simulator};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(20);
    for (name, words) in [("mult16", 32usize), ("square", 16)] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let patterns = PatternSet::random(aig.num_inputs(), words, 5);

        group.bench_function(format!("full/{name}/{}pat", words * 64), |b| {
            b.iter(|| black_box(Simulator::new(&aig, &patterns)));
        });

        group.bench_function(format!("resim_cone/{name}/{}pat", words * 64), |b| {
            b.iter_batched(
                || {
                    let mut a = aig.clone();
                    let sim = Simulator::new(&a, &patterns);
                    let target = a.iter_ands().nth(a.num_ands() / 2).unwrap();
                    let rec = Lac::const1(target).apply(&mut a);
                    (a, sim, rec)
                },
                |(a, mut sim, rec)| {
                    black_box(sim.resimulate_fanout_cone(&a, &[rec.replacement.node()]))
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
