//! End-to-end flow benchmark: wall-clock per complete synthesis run for
//! the conventional baseline versus the dual-phase flows on a small
//! circuit — the headline comparison of Table II in miniature.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use als_circuits::{benchmark, BenchmarkScale};
use als_engine::{ConventionalFlow, DualPhaseFlow, Flow, FlowConfig, VecbeeDepthOneFlow};
use als_error::{paper_thresholds, MetricKind};

fn bench_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("flows");
    group.sample_size(10);
    let aig = benchmark("sm9x8", BenchmarkScale::Reduced);
    let bound = paper_thresholds(MetricKind::Mse, aig.num_outputs())[1];
    let cfg = FlowConfig::new(MetricKind::Mse, bound).with_patterns(1024);

    group.bench_function("conventional/sm9x8", |b| {
        let flow = ConventionalFlow::new(cfg.clone());
        b.iter(|| black_box(flow.run(&aig).unwrap()).lacs_applied());
    });
    group.bench_function("vecbee_l1/sm9x8", |b| {
        let flow = VecbeeDepthOneFlow::new(cfg.clone());
        b.iter(|| black_box(flow.run(&aig).unwrap()).lacs_applied());
    });
    group.bench_function("dp/sm9x8", |b| {
        let flow = DualPhaseFlow::new(cfg.clone());
        b.iter(|| black_box(flow.run(&aig).unwrap()).lacs_applied());
    });
    group.bench_function("dp_sa/sm9x8", |b| {
        let flow = DualPhaseFlow::with_self_adaption(cfg.clone());
        b.iter(|| black_box(flow.run(&aig).unwrap()).lacs_applied());
    });
    group.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);
