//! Journal overhead on a full DP-SA run: the same synthesis is timed with
//! journaling off and on (`FlowConfig::with_journal`), the results are
//! asserted identical, and the relative overhead is written to
//! `BENCH_journal.json`.
//!
//! Every committed iteration costs one atomic rewrite of the journal file
//! (temp + fsync + rename), so the overhead scales with commits, not run
//! length — this bench reports both the wall-clock ratio and the per-commit
//! cost so regressions in the journal's write path are visible.
//!
//! Like the criterion-shim benches, the binary is inert without the
//! `--bench` argument `cargo bench` passes. The output path defaults to
//! `<repo root>/BENCH_journal.json` and can be overridden with
//! `ALS_BENCH_OUT`.

use std::time::Instant;

use als_circuits::{benchmark, BenchmarkScale};
use als_engine::{DualPhaseFlow, Flow, FlowConfig, FlowResult};
use als_error::MetricKind;

const RUNS: usize = 3;

/// Best-of-`RUNS` wall time of `f` in milliseconds (after one warmup).
fn time_ms<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    let result = f();
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (result, best)
}

fn assert_identical(off: &FlowResult, on: &FlowResult, name: &str) {
    assert_eq!(off.lacs_applied(), on.lacs_applied(), "{name}: journaling changed the run");
    assert_eq!(off.final_error.to_bits(), on.final_error.to_bits(), "{name}");
    assert_eq!(
        als_aig::io::to_ascii_string(&off.circuit),
        als_aig::io::to_ascii_string(&on.circuit),
        "{name}: journaling changed the circuit"
    );
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return; // `cargo test` runs bench binaries without --bench
    }
    let journal_path = std::env::temp_dir().join(format!("als-bench-{}.alsj", std::process::id()));

    let mut rows: Vec<String> = Vec::new();
    for name in ["adder", "sm9x8", "mult16"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let cfg = FlowConfig::new(MetricKind::Med, 4.0).with_patterns(1024).with_threads(1);

        let (off, off_ms) =
            time_ms(|| DualPhaseFlow::with_self_adaption(cfg.clone()).run(&aig).unwrap());
        let (on, on_ms) = time_ms(|| {
            DualPhaseFlow::with_self_adaption(cfg.clone().with_journal(&journal_path))
                .run(&aig)
                .unwrap()
        });
        assert_identical(&off, &on, name);

        let commits = on.lacs_applied();
        let journal_bytes = std::fs::metadata(&journal_path).map(|m| m.len()).unwrap_or(0);
        std::fs::remove_file(&journal_path).ok();
        let overhead_ms = (on_ms - off_ms).max(0.0);
        let overhead_pct = 100.0 * overhead_ms / off_ms.max(1e-9);
        let per_commit_us = 1e3 * overhead_ms / (commits.max(1) as f64);
        println!(
            "bench: journal/{name:<7} off {off_ms:>9.3} ms  on {on_ms:>9.3} ms  \
             overhead {overhead_pct:>5.1}% ({per_commit_us:.0} us/commit, {commits} commits, \
             {journal_bytes} B)"
        );
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"gates\": {}, \"commits\": {commits}, \
             \"journal_bytes\": {journal_bytes}, \"off_ms\": {off_ms:.3}, \
             \"on_ms\": {on_ms:.3}, \"overhead_pct\": {overhead_pct:.2}, \
             \"per_commit_us\": {per_commit_us:.1}}}",
            aig.num_ands()
        ));
    }

    let json = format!(
        "{{\n  \"flow\": \"DP-SA\",\n  \"metric\": \"med\",\n  \"bound\": 4.0,\n  \
         \"patterns\": 1024,\n  \"runs\": {RUNS},\n  \"circuits\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = std::env::var("ALS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_journal.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_journal.json");
    println!("bench: journal overhead -> {out}");
}
