//! Journal overhead on a full DP-SA run: the same synthesis is timed with
//! journaling off and on (`FlowConfig::with_journal`), the results are
//! asserted identical, and the relative overhead is written to
//! `BENCH_journal.json`.
//!
//! Under group commit the writer persists (temp + fsync + rename + parent
//! dir fsync) once per committed *iteration* — at the next checkpoint
//! append or the final flush — not once per LAC, so the overhead scales
//! with iterations. This bench derives the persist count from the loaded
//! journal (header + one per checkpoint + one trailing flush when the
//! journal ends in commits) and reports commits-per-persist alongside the
//! wall-clock ratio, so both write-path regressions and any return to
//! per-commit fsyncing are visible.
//!
//! Like the criterion-shim benches, the binary is inert without the
//! `--bench` argument `cargo bench` passes. The output path defaults to
//! `<repo root>/BENCH_journal.json` and can be overridden with
//! `ALS_BENCH_OUT`.

use std::time::Instant;

use als_circuits::{benchmark, BenchmarkScale};
use als_engine::{DualPhaseFlow, Flow, FlowConfig, FlowResult};
use als_error::MetricKind;

const RUNS: usize = 3;

/// Best-of-`RUNS` wall time of `f` in milliseconds (after one warmup).
fn time_ms<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    let result = f();
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (result, best)
}

fn assert_identical(off: &FlowResult, on: &FlowResult, name: &str) {
    assert_eq!(off.lacs_applied(), on.lacs_applied(), "{name}: journaling changed the run");
    assert_eq!(off.final_error.to_bits(), on.final_error.to_bits(), "{name}");
    assert_eq!(
        als_aig::io::to_ascii_string(&off.circuit),
        als_aig::io::to_ascii_string(&on.circuit),
        "{name}: journaling changed the circuit"
    );
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return; // `cargo test` runs bench binaries without --bench
    }
    let journal_path = std::env::temp_dir().join(format!("als-bench-{}.alsj", std::process::id()));

    let mut rows: Vec<String> = Vec::new();
    for name in ["adder", "sm9x8", "mult16"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let cfg = FlowConfig::new(MetricKind::Med, 4.0).with_patterns(1024).with_threads(1);

        let (off, off_ms) =
            time_ms(|| DualPhaseFlow::with_self_adaption(cfg.clone()).run(&aig).unwrap());
        let (on, on_ms) = time_ms(|| {
            DualPhaseFlow::with_self_adaption(cfg.clone().with_journal(&journal_path))
                .run(&aig)
                .unwrap()
        });
        assert_identical(&off, &on, name);

        let commits = on.lacs_applied();
        let journal_bytes = std::fs::metadata(&journal_path).map(|m| m.len()).unwrap_or(0);
        // Derive the persist count from the surviving journal: the header
        // write, one group commit per checkpoint append, and a final
        // flush if the journal ends in commit records.
        let loaded = als_engine::journal::load(&journal_path).expect("journal loads");
        let checkpoints = loaded
            .records
            .iter()
            .filter(|r| matches!(r, als_engine::journal::Record::Checkpoint(_)))
            .count();
        let trailing_flush =
            matches!(loaded.records.last(), Some(als_engine::journal::Record::Commit(_)));
        let persists = 1 + checkpoints + usize::from(trailing_flush);
        let commits_per_persist = commits as f64 / persists as f64;
        std::fs::remove_file(&journal_path).ok();
        let overhead_ms = (on_ms - off_ms).max(0.0);
        let overhead_pct = 100.0 * overhead_ms / off_ms.max(1e-9);
        let per_commit_us = 1e3 * overhead_ms / (commits.max(1) as f64);
        println!(
            "bench: journal/{name:<7} off {off_ms:>9.3} ms  on {on_ms:>9.3} ms  \
             overhead {overhead_pct:>5.1}% ({per_commit_us:.0} us/commit, {commits} commits, \
             {persists} persists, {journal_bytes} B)"
        );
        rows.push(format!(
            "    {{\"name\": \"{name}\", \"gates\": {}, \"commits\": {commits}, \
             \"checkpoints\": {checkpoints}, \"persists\": {persists}, \
             \"commits_per_persist\": {commits_per_persist:.2}, \
             \"journal_bytes\": {journal_bytes}, \"off_ms\": {off_ms:.3}, \
             \"on_ms\": {on_ms:.3}, \"overhead_pct\": {overhead_pct:.2}, \
             \"per_commit_us\": {per_commit_us:.1}}}",
            aig.num_ands()
        ));
    }

    let json = format!(
        "{{\n  \"flow\": \"DP-SA\",\n  \"metric\": \"med\",\n  \"bound\": 4.0,\n  \
         \"patterns\": 1024,\n  \"runs\": {RUNS},\n  \"note\": \"group commit: one persist \
         (temp + fsync + rename + dir fsync) per iteration — at the checkpoint append or \
         the final flush — not one per committed LAC\",\n  \"circuits\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = std::env::var("ALS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_journal.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_journal.json");
    println!("bench: journal overhead -> {out}");
}
