//! Serial-vs-parallel comparison of the three analysis steps on the shared
//! worker pool, emitting machine-readable speedups to `BENCH_parallel.json`.
//!
//! Step 1 is the disjoint-cut computation ([`CutState::compute_with`]),
//! step 2 the full CPM ([`als_cpm::compute_full_with`]) and step 3 the
//! bit-parallel simulation ([`Simulator::new_with`]). Each step is timed
//! with a 1-thread pool and with an N-thread pool (`ALS_BENCH_THREADS`,
//! default 4) and the parallel result is asserted bit-identical to the
//! serial one before any number is reported.
//!
//! The N-thread pool runs under the adaptive scheduler with an attached
//! metrics registry, so the report also records how the cost model decided
//! each region (parallel / serial / floor), how many chunks were stolen,
//! and the mean predicted-vs-actual error of the regions that fanned out —
//! the evidence that a regression (or a host too small to parallelize on)
//! is a scheduling decision, not silent overhead.
//!
//! Like the criterion-shim benches, the binary is inert without the
//! `--bench` argument `cargo bench` passes, so `cargo test` treats it as a
//! no-op. The output path defaults to `<repo root>/BENCH_parallel.json` and
//! can be overridden with `ALS_BENCH_OUT`.

use std::time::Instant;

use als_circuits::{benchmark, BenchmarkScale};
use als_cpm::compute_full_with;
use als_cuts::CutState;
use als_obs::{Obs, ObsConfig};
use als_par::{SchedConfig, WorkerPool};
use als_sim::{PatternSet, Simulator};

const PATTERN_WORDS: usize = 32; // 2048 Monte-Carlo patterns
const RUNS: usize = 7;

/// Best-of-`RUNS` wall time of `f` in milliseconds (after one warmup).
/// Sub-millisecond steps repeat until ~2ms of samples accumulate so a
/// single clock-granularity blip cannot skew the reported best.
fn time_ms<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    let result = f(); // warmup; also the value handed back for checking
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut runs = 0;
    while runs < RUNS || (spent < 2.0 && runs < 64) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        spent += ms;
        runs += 1;
    }
    (result, best)
}

struct StepRow {
    step: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
}

impl StepRow {
    fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms.max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            "{{\"step\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \
             \"speedup\": {:.3}}}",
            self.step,
            self.serial_ms,
            self.parallel_ms,
            self.speedup()
        )
    }
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return; // `cargo test` runs bench binaries without --bench
    }
    let threads: usize = std::env::var("ALS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 2)
        .unwrap_or(4);
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let serial = WorkerPool::new(1);
    // The parallel pool honours ALS_SCHED (adaptive by default) and feeds
    // its cutover decisions into a private registry read back at the end.
    let obs = Obs::new(ObsConfig::default()).expect("in-memory metrics registry");
    let pool = WorkerPool::with_config(threads, SchedConfig::from_env()).with_obs(&obs);

    let mut circuit_rows: Vec<String> = Vec::new();
    let mut step12 = Vec::new();
    for name in ["sm9x8", "mult16", "adder"] {
        let aig = benchmark(name, BenchmarkScale::Reduced);
        let patterns = PatternSet::random(aig.num_inputs(), PATTERN_WORDS, 0xA15);

        // Step 3 first: both later steps consume the simulator.
        let (sim, sim_serial_ms) = time_ms(|| Simulator::new_with(&aig, &patterns, &serial));
        let (psim, sim_parallel_ms) = time_ms(|| Simulator::new_with(&aig, &patterns, &pool));
        for id in aig.iter_live() {
            assert_eq!(sim.value(id), psim.value(id), "{name}: sim diverged at {id}");
        }

        // Step 1: disjoint cuts.
        let (cuts, cut_serial_ms) = time_ms(|| CutState::compute_with(&aig, &serial).unwrap());
        let (pcuts, cut_parallel_ms) = time_ms(|| CutState::compute_with(&aig, &pool).unwrap());
        for id in aig.iter_live() {
            assert_eq!(cuts.cut(id), pcuts.cut(id), "{name}: cuts diverged at {id}");
        }

        // Step 2: full CPM.
        let (cpm, cpm_serial_ms) =
            time_ms(|| compute_full_with(&aig, &sim, &cuts, &serial).unwrap());
        let (pcpm, cpm_parallel_ms) =
            time_ms(|| compute_full_with(&aig, &sim, &cuts, &pool).unwrap());
        for id in aig.iter_live() {
            assert_eq!(cpm.row(id), pcpm.row(id), "{name}: CPM diverged at {id}");
        }

        let steps = [
            StepRow { step: "cuts", serial_ms: cut_serial_ms, parallel_ms: cut_parallel_ms },
            StepRow { step: "cpm", serial_ms: cpm_serial_ms, parallel_ms: cpm_parallel_ms },
            StepRow { step: "sim", serial_ms: sim_serial_ms, parallel_ms: sim_parallel_ms },
        ];
        for s in &steps[..2] {
            step12.push(s.speedup());
        }
        for s in &steps {
            println!(
                "bench: parallel/{name}/{:<4} serial {:>9.3} ms  x{threads} {:>9.3} ms  \
                 speedup {:>5.2}",
                s.step,
                s.serial_ms,
                s.parallel_ms,
                s.speedup()
            );
        }
        let steps_json: Vec<String> = steps.iter().map(StepRow::json).collect();
        circuit_rows.push(format!(
            "    {{\"name\": \"{name}\", \"gates\": {}, \"steps\": [\n      {}\n    ]}}",
            aig.num_ands(),
            steps_json.join(",\n      ")
        ));
    }

    let geomean = (step12.iter().map(|s| s.ln()).sum::<f64>() / step12.len() as f64).exp();
    let cutover_parallel = obs.counter("als_sched_cutover_parallel_total", "").get();
    let cutover_serial = obs.counter("als_sched_cutover_serial_total", "").get();
    let cutover_floor = obs.counter("als_sched_cutover_floor_total", "").get();
    let steals = obs.counter("als_sched_steals_total", "").get();
    let pred_err = obs.histogram("als_sched_pred_err_pct", "");
    let mean_pred_err = if pred_err.count() > 0 {
        format!("{:.1}", pred_err.sum() as f64 / pred_err.count() as f64)
    } else {
        "null".to_string()
    };
    println!(
        "bench: sched decisions parallel {cutover_parallel} serial {cutover_serial} \
         floor {cutover_floor} | steals {steals} | mean pred err {mean_pred_err}%"
    );
    let note = if host_threads < threads {
        format!(
            "\n  \"note\": \"host exposes only {host_threads} hardware thread(s); \
             a {threads}-thread pool cannot speed up on this machine and the numbers \
             measure scheduling overhead, not parallel scaling\",",
        )
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"host_threads\": {host_threads},{note}\n  \
         \"pattern_words\": {PATTERN_WORDS},\n  \"geomean_speedup_steps_1_2\": {geomean:.3},\n  \
         \"sched\": {{\n    \"cutover_parallel\": {cutover_parallel},\n    \
         \"cutover_serial\": {cutover_serial},\n    \"cutover_floor\": {cutover_floor},\n    \
         \"steals\": {steals},\n    \"mean_pred_err_pct\": {mean_pred_err}\n  }},\n  \
         \"circuits\": [\n{}\n  ]\n}}\n",
        circuit_rows.join(",\n")
    );
    let out = std::env::var("ALS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_parallel.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, &json).expect("write BENCH_parallel.json");
    println!("bench: parallel geomean speedup (steps 1+2) {geomean:.2} -> {out}");
}
