//! Shared helpers for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Each binary accepts a small common set of flags (parsed by
//! [`ExpArgs::parse`]):
//!
//! * `--full` — paper-scale circuits (slow!) instead of reduced ones,
//! * `--patterns N` — Monte-Carlo patterns (default 2048 reduced / 8192
//!   full),
//! * `--circuits a,b,c` — restrict to a subset of benchmarks,
//! * `--seed S` — RNG seed,
//! * `--threshold-index 0|1|2` — which of the paper's three thresholds,
//! * `--trace p.jsonl` / `--metrics p.prom` — structured observability
//!   sinks shared by every run the binary performs.

use als_aig::Aig;
use als_circuits::{benchmark, BenchmarkScale};
use als_engine::{Flow, FlowConfig, FlowResult};
use als_error::{paper_thresholds, MetricKind};
use als_map::{map_circuit, CellLibrary};
use als_obs::{Obs, ObsConfig};

pub use als_error::metric::paper_thresholds as thresholds;

/// Common experiment arguments.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Paper-scale circuits.
    pub full: bool,
    /// Monte-Carlo pattern count.
    pub patterns: usize,
    /// Benchmarks to run (empty = binary default).
    pub circuits: Vec<String>,
    /// RNG seed.
    pub seed: u64,
    /// Which paper threshold to use (0 = tight, 1 = median, 2 = loose).
    pub threshold_index: usize,
    /// Optional group filter (`small` / `large`).
    pub group: Option<String>,
    /// Worker threads for the shared analysis pool (`None` keeps the
    /// `ALS_THREADS` environment default).
    pub threads: Option<usize>,
    /// JSONL span-trace path shared by every run of the binary.
    pub trace: Option<String>,
    /// Prometheus text-metrics path, written when the binary finishes.
    pub metrics: Option<String>,
}

impl Default for ExpArgs {
    fn default() -> ExpArgs {
        ExpArgs {
            full: false,
            patterns: 0, // resolved by scale
            circuits: Vec::new(),
            seed: 0xA15,
            threshold_index: 1,
            group: None,
            threads: None,
            trace: None,
            metrics: None,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> ExpArgs {
        let mut out = ExpArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match a.as_str() {
                "--full" => out.full = true,
                "--patterns" => {
                    out.patterns = value("--patterns").parse().unwrap_or_else(|_| {
                        eprintln!("--patterns expects a number");
                        std::process::exit(2);
                    })
                }
                "--circuits" => {
                    out.circuits =
                        value("--circuits").split(',').map(|s| s.trim().to_string()).collect()
                }
                "--seed" => {
                    out.seed = value("--seed").parse().unwrap_or_else(|_| {
                        eprintln!("--seed expects a number");
                        std::process::exit(2);
                    })
                }
                "--threshold-index" => {
                    out.threshold_index = value("--threshold-index").parse().unwrap_or_else(|_| {
                        eprintln!("--threshold-index expects 0, 1 or 2");
                        std::process::exit(2);
                    })
                }
                "--group" => out.group = Some(value("--group")),
                "--trace" => out.trace = Some(value("--trace")),
                "--metrics" => out.metrics = Some(value("--metrics")),
                "--threads" => {
                    out.threads = Some(value("--threads").parse().unwrap_or_else(|_| {
                        eprintln!("--threads expects a number");
                        std::process::exit(2);
                    }))
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --full --patterns N --circuits a,b,c --seed S \
                         --threshold-index 0|1|2 --group small|large --threads T \
                         --trace p.jsonl --metrics p.prom"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        if out.patterns == 0 {
            out.patterns = if out.full { 8192 } else { 2048 };
        }
        out
    }

    /// The benchmark scale implied by `--full`.
    pub fn scale(&self) -> BenchmarkScale {
        if self.full {
            BenchmarkScale::Paper
        } else {
            BenchmarkScale::Reduced
        }
    }

    /// Resolves the circuit list: explicit `--circuits`, else the group,
    /// else `default_names`.
    pub fn circuit_names(&self, default_names: Vec<&'static str>) -> Vec<String> {
        if !self.circuits.is_empty() {
            return self.circuits.clone();
        }
        match self.group.as_deref() {
            Some("small") => {
                als_circuits::suite::small_circuit_names().iter().map(|s| s.to_string()).collect()
            }
            Some("large") => {
                als_circuits::suite::large_circuit_names().iter().map(|s| s.to_string()).collect()
            }
            _ => default_names.into_iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Builds a benchmark at the selected scale.
    pub fn build(&self, name: &str) -> Aig {
        benchmark(name, self.scale())
    }

    /// The paper threshold for `metric` on a circuit with `k` outputs.
    pub fn threshold(&self, metric: MetricKind, k: usize) -> f64 {
        paper_thresholds(metric, k)[self.threshold_index.min(2)]
    }

    /// One observability handle for the whole binary (disabled unless
    /// `--trace` or `--metrics` was given). Call once, clone it into every
    /// [`FlowConfig`] via `with_obs`, and `finish()` it before exiting.
    pub fn observability(&self) -> Obs {
        if self.trace.is_none() && self.metrics.is_none() {
            return Obs::disabled();
        }
        Obs::new(ObsConfig {
            trace: self.trace.as_ref().map(Into::into),
            metrics: self.metrics.as_ref().map(Into::into),
            tree: false,
        })
        .unwrap_or_else(|e| {
            eprintln!("observability setup failed: {e}");
            std::process::exit(2);
        })
    }

    /// A flow configuration for the given circuit under `metric`.
    ///
    /// Mirrors the paper's setup: SASIMI LACs and `M = 60` for small
    /// circuits, constant LACs and `M = 150` for large ones.
    pub fn config_for(&self, name: &str, metric: MetricKind, bound: f64) -> FlowConfig {
        let mut base =
            FlowConfig::new(metric, bound).with_patterns(self.patterns).with_seed(self.seed);
        if let Some(threads) = self.threads {
            base = base.with_threads(threads);
        }
        if als_circuits::suite::large_circuit_names().contains(&name) {
            base.for_large_circuit()
        } else {
            base
        }
    }
}

/// ADP ratio of a flow result against the original circuit.
pub fn adp_ratio_of(result: &FlowResult, original: &Aig) -> f64 {
    als_map::adp_ratio(&result.circuit, original, &CellLibrary::new())
}

/// Runs a flow and prints a one-line summary row; returns
/// `(adp_ratio, runtime_seconds)`.
pub fn run_and_report(flow: &dyn Flow, original: &Aig) -> (FlowResult, f64, f64) {
    let res = flow.run(original).expect("flow failed");
    let ratio = adp_ratio_of(&res, original);
    let secs = res.runtime.as_secs_f64();
    (res, ratio, secs)
}

/// Formats a mapping line for Table I.
pub fn describe(aig: &Aig) -> String {
    let m = map_circuit(aig, &CellLibrary::new());
    format!(
        "{:<10} {:>4}/{:<4} {:>7} {:>10.2} {:>8.3}",
        aig.name(),
        aig.num_inputs(),
        aig.num_outputs(),
        aig.num_ands(),
        m.area,
        m.delay
    )
}

/// Percentage formatter.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_resolve_patterns() {
        let a = ExpArgs::default();
        assert_eq!(a.patterns, 0);
        // parse() resolves, but we can't call it here (reads process args);
        // emulate the resolution rule:
        let patterns = if a.full { 8192 } else { 2048 };
        assert_eq!(patterns, 2048);
    }

    #[test]
    fn circuit_names_resolution() {
        let mut a = ExpArgs::default();
        assert_eq!(a.circuit_names(vec!["adder"]), vec!["adder"]);
        a.group = Some("small".into());
        assert!(a.circuit_names(vec![]).contains(&"c880".to_string()));
        a.circuits = vec!["mult16".into()];
        assert_eq!(a.circuit_names(vec![]), vec!["mult16"]);
    }

    #[test]
    fn config_for_selects_group_defaults() {
        let a = ExpArgs { patterns: 512, ..ExpArgs::default() };
        let small = a.config_for("adder", MetricKind::Mse, 1.0);
        assert!(small.lac.substitutions);
        assert_eq!(small.m, 60);
        let large = a.config_for("log2", MetricKind::Mse, 1.0);
        assert!(!large.lac.substitutions);
        assert_eq!(large.m, 150);
    }

    #[test]
    fn describe_contains_name() {
        let aig = benchmark("c880", BenchmarkScale::Reduced);
        assert!(describe(&aig).contains("c880"));
    }
}
