//! Experiment E5 — Table III: AccALS versus DP-SA under the ER and MED
//! constraints.

use als_bench::{adp_ratio_of, pct, ExpArgs};
use als_engine::flows;
use als_error::MetricKind;

fn main() {
    let args = ExpArgs::parse();
    let obs = args.observability();
    let default = als_circuits::benchmark_names();
    let names = args.circuit_names(default);

    println!(
        "Table III reproduction (threshold index {}, {} patterns, {} scale)",
        args.threshold_index,
        args.patterns,
        if args.full { "paper" } else { "reduced" }
    );
    println!(
        "{:<10} | {:>9} {:>9} {:>8} {:>8} | {:>9} {:>9} {:>8} {:>8}",
        "", "ER", "", "", "", "MED", "", "", ""
    );
    println!(
        "{:<10} | {:>9} {:>9} {:>8} {:>8} | {:>9} {:>9} {:>8} {:>8}",
        "Circuit", "AccALS", "DP-SA", "t(Acc)", "t(DPSA)", "AccALS", "DP-SA", "t(Acc)", "t(DPSA)"
    );

    let mut sums = [0.0f64; 8];
    let mut count = 0usize;
    for name in &names {
        let aig = args.build(name);
        let mut cells = [0.0f64; 8];
        for (mi, metric) in [MetricKind::Er, MetricKind::Med].into_iter().enumerate() {
            let bound = args.threshold(metric, aig.num_outputs());
            let cfg = args.config_for(name, metric, bound).with_obs(obs.clone());
            let run = |flow_name| {
                flows::by_name(flow_name, cfg.clone())
                    .expect("registered flow")
                    .run(&aig)
                    .expect("flow failed")
            };
            let acc = run("accals");
            let dpsa = run("dpsa");
            for (res, label) in [(&acc, "AccALS"), (&dpsa, "DP-SA")] {
                assert!(
                    res.final_error <= bound * (1.0 + 1e-9),
                    "{name}/{label}/{metric}: bound violated ({} > {bound})",
                    res.final_error
                );
            }
            cells[4 * mi] = adp_ratio_of(&acc, &aig);
            cells[4 * mi + 1] = adp_ratio_of(&dpsa, &aig);
            cells[4 * mi + 2] = acc.runtime.as_secs_f64();
            cells[4 * mi + 3] = dpsa.runtime.as_secs_f64();
        }
        println!(
            "{:<10} | {:>9} {:>9} {:>8.2} {:>8.2} | {:>9} {:>9} {:>8.2} {:>8.2}",
            name,
            pct(cells[0]),
            pct(cells[1]),
            cells[2],
            cells[3],
            pct(cells[4]),
            pct(cells[5]),
            cells[6],
            cells[7]
        );
        for i in 0..8 {
            sums[i] += cells[i];
        }
        count += 1;
    }
    if count > 0 {
        let n = count as f64;
        println!(
            "{:<10} | {:>9} {:>9} {:>8.2} {:>8.2} | {:>9} {:>9} {:>8.2} {:>8.2}",
            "Avg",
            pct(sums[0] / n),
            pct(sums[1] / n),
            sums[2] / n,
            sums[3] / n,
            pct(sums[4] / n),
            pct(sums[5] / n),
            sums[6] / n,
            sums[7] / n
        );
    }
    obs.finish().expect("observability export failed");
}
