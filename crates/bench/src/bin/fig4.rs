//! Experiment E2 — Fig. 4: candidate node set hit rate.
//!
//! Reproduces the paper's motivating experiment: run the conventional flow,
//! take the 60 nodes with the smallest error increase after the *first*
//! comprehensive analysis as the candidate set `S`, and measure what
//! fraction `T_k / k` of the optimal choices of the next `k` iterations
//! fall inside `S`, for `k = 10, 20, …, 60`.

use std::collections::HashSet;

use als_bench::ExpArgs;
use als_engine::flows;
use als_error::MetricKind;

fn main() {
    let args = ExpArgs::parse();
    let obs = args.observability();
    let names = args.circuit_names(vec!["c880", "c1908", "sm9x8", "mult16", "adder", "sin"]);
    let set_size = 60;
    println!("candidate-set hit rate T_k/k (set size {set_size}, MSE constraint)");
    print!("{:<10}", "Circuit");
    for k in (10..=60).step_by(10) {
        print!(" {:>6}", format!("k={k}"));
    }
    println!();

    for name in names {
        let aig = args.build(&name);
        let bound = args.threshold(MetricKind::Mse, aig.num_outputs());
        let cfg = args.config_for(&name, MetricKind::Mse, bound).with_obs(obs.clone());
        let res = flows::by_name("conventional", cfg)
            .expect("registered flow")
            .run(&aig)
            .expect("flow failed");
        let s: HashSet<_> = res.first_ranking.iter().take(set_size).copied().collect();
        print!("{:<10}", name);
        for k in (10..=60).step_by(10) {
            // choices of iterations 2..k+1 (the set was formed after
            // iteration 1)
            let choices: Vec<_> = res.iterations.iter().skip(1).take(k).collect();
            if choices.is_empty() {
                print!(" {:>6}", "-");
                continue;
            }
            let hits = choices.iter().filter(|r| s.contains(&r.lac.target)).count();
            print!(" {:>5.0}%", 100.0 * hits as f64 / choices.len() as f64);
        }
        println!("   ({} LACs applied)", res.lacs_applied());
    }
    obs.finish().expect("observability export failed");
}
