//! Experiments E3/E4 — Table II: VECBEE(l=∞), VECBEE(l=1), DP and DP-SA
//! under the MSE constraint.
//!
//! Reports the ADP ratio and runtime of each flow per circuit, plus the
//! speedup of DP over the conventional baseline. Use `--group small` /
//! `--group large` to select the paper's circuit groups; default runs the
//! small group at reduced scale.

use als_bench::{adp_ratio_of, pct, ExpArgs};
use als_engine::flows;
use als_error::MetricKind;

/// The four flows of Table II, in column order (registry names).
const TABLE2_FLOWS: [&str; 4] = ["conventional", "l1", "dp", "dpsa"];

fn main() {
    let args = ExpArgs::parse();
    let obs = args.observability();
    let default = als_circuits::suite::small_circuit_names();
    let names = args.circuit_names(default);

    println!(
        "Table II reproduction (MSE, threshold index {}, {} patterns, {} scale)",
        args.threshold_index,
        args.patterns,
        if args.full { "paper" } else { "reduced" }
    );
    println!(
        "{:<10} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>7}",
        "Circuit",
        "ADP(inf)",
        "ADP(l=1)",
        "ADP(DP)",
        "ADP(DPSA)",
        "t(inf)",
        "t(l=1)",
        "t(DP)",
        "t(DPSA)",
        "speedup"
    );

    let mut sums = [0.0f64; 8];
    let mut count = 0usize;
    for name in &names {
        let aig = args.build(name);
        let bound = args.threshold(MetricKind::Mse, aig.num_outputs());
        let cfg = args.config_for(name, MetricKind::Mse, bound).with_obs(obs.clone());

        let mut ratios = [0.0f64; 4];
        let mut times = [0.0f64; 4];
        for (i, flow_name) in TABLE2_FLOWS.iter().enumerate() {
            let flow = flows::by_name(*flow_name, cfg.clone()).expect("registered flow");
            let res = flow.run(&aig).expect("flow failed");
            assert!(
                res.final_error <= bound * (1.0 + 1e-9),
                "{name}/{}: bound violated",
                flow.name()
            );
            ratios[i] = adp_ratio_of(&res, &aig);
            times[i] = res.runtime.as_secs_f64();
        }
        let speedup = if times[2] > 0.0 { times[0] / times[2] } else { f64::NAN };
        println!(
            "{:<10} | {:>9} {:>9} {:>9} {:>9} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>6.1}x",
            name,
            pct(ratios[0]),
            pct(ratios[1]),
            pct(ratios[2]),
            pct(ratios[3]),
            times[0],
            times[1],
            times[2],
            times[3],
            speedup
        );
        for i in 0..4 {
            sums[i] += ratios[i];
            sums[4 + i] += times[i];
        }
        count += 1;
    }
    if count > 0 {
        let n = count as f64;
        println!(
            "{:<10} | {:>9} {:>9} {:>9} {:>9} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>6.1}x",
            "Avg",
            pct(sums[0] / n),
            pct(sums[1] / n),
            pct(sums[2] / n),
            pct(sums[3] / n),
            sums[4] / n,
            sums[5] / n,
            sums[6] / n,
            sums[7] / n,
            sums[4] / sums[6].max(1e-12)
        );
    }
    obs.finish().expect("observability export failed");
}
