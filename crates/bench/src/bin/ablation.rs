//! Experiment E6 — ablation of the design choices in §III-D.
//!
//! Reports, for DP and DP-SA, the per-step time breakdown (step 1 cuts /
//! step 2 CPM / step 3 evaluation), the number of comprehensive analyses
//! per applied LAC, and the phase-two share of applied LACs — the
//! quantities behind the paper's runtime model (Eq. 2).

use als_bench::{adp_ratio_of, pct, ExpArgs};
use als_engine::{flows, Phase, RuntimeModel};
use als_error::MetricKind;

fn main() {
    let args = ExpArgs::parse();
    let obs = args.observability();
    let names = args.circuit_names(vec!["sm9x8", "mult16", "adder", "sin"]);
    println!(
        "Self-adaption ablation (MSE, {} patterns, {} scale)",
        args.patterns,
        if args.full { "paper" } else { "reduced" }
    );
    println!(
        "{:<10} {:<6} | {:>8} {:>8} {:>8} | {:>6} {:>7} {:>8} {:>7} | {:>6} {:>5} {:>7}",
        "Circuit",
        "Flow",
        "t1:cuts",
        "t2:cpm",
        "t3:eval",
        "LACs",
        "ph2%",
        "analyses",
        "ADP",
        "f(M)",
        "N_r",
        "pred.x"
    );

    for name in &names {
        let aig = args.build(name);
        let bound = args.threshold(MetricKind::Mse, aig.num_outputs());
        let cfg = args.config_for(name, MetricKind::Mse, bound).with_obs(obs.clone());
        for (flow_name, label) in [("dp", "DP"), ("dpsa", "DP-SA")] {
            let flow = flows::by_name(flow_name, cfg.clone()).expect("registered flow");
            let res = flow.run(&aig).expect("flow failed");
            let incremental =
                res.iterations.iter().filter(|r| r.phase == Phase::Incremental).count();
            let ph2 = if res.lacs_applied() > 0 {
                incremental as f64 / res.lacs_applied() as f64
            } else {
                0.0
            };
            let model = RuntimeModel::fit(&res);
            let (fm, nr, pred) =
                model.map(|m| (m.f_m(), m.n_r, m.predicted_speedup())).unwrap_or((0.0, 0.0, 1.0));
            println!(
                "{:<10} {:<6} | {:>8.3} {:>8.3} {:>8.3} | {:>6} {:>7} {:>8} {:>7} | {:>6.3} {:>5.1} {:>6.1}x",
                name,
                label,
                res.step_times.cuts.as_secs_f64(),
                res.step_times.cpm.as_secs_f64(),
                res.step_times.eval.as_secs_f64(),
                res.lacs_applied(),
                pct(ph2),
                res.comprehensive_analyses,
                pct(adp_ratio_of(&res, &aig)),
                fm,
                nr,
                pred
            );
        }
    }
    obs.finish().expect("observability export failed");
}
