//! Experiment E1 — Table I: benchmark circuit information.
//!
//! Prints, per benchmark, the PI/PO counts, AIG node count, mapped area
//! and critical-path delay. Run with `--full` for the paper-scale suite.

use als_bench::{describe, ExpArgs};
use als_circuits::benchmark_names;

fn main() {
    let args = ExpArgs::parse();
    let names = args.circuit_names(benchmark_names());
    println!(
        "{:<10} {:>4}/{:<4} {:>7} {:>10} {:>8}   ({} scale)",
        "Circuit",
        "#I",
        "#O",
        "#Nd",
        "Area(um2)",
        "Delay",
        if args.full { "paper" } else { "reduced" }
    );
    for name in names {
        let aig = args.build(&name);
        println!("{}", describe(&aig));
    }
}
