//! Candidate LAC enumeration.
//!
//! Constant LACs exist for every gate. SASIMI substitution candidates pair
//! each target with the existing signals (in either polarity) that agree
//! with it on the largest fraction of simulated patterns, excluding
//! substitutions that would create a cycle (source inside the target's
//! TFO cone).

use als_aig::{Aig, NodeId};
use als_sim::Simulator;

use crate::lac::Lac;

/// Controls candidate enumeration.
#[derive(Clone, Debug)]
pub struct CandidateConfig {
    /// Enumerate constant-0/1 LACs.
    pub constants: bool,
    /// Enumerate SASIMI substitution LACs.
    pub substitutions: bool,
    /// Maximum substitution candidates kept per target node.
    pub max_subs_per_target: usize,
    /// Substitutions whose disagreement fraction exceeds this are dropped
    /// (they could never be good LACs).
    pub max_distance_frac: f64,
}

impl Default for CandidateConfig {
    fn default() -> CandidateConfig {
        CandidateConfig {
            constants: true,
            substitutions: true,
            max_subs_per_target: 8,
            max_distance_frac: 0.25,
        }
    }
}

impl CandidateConfig {
    /// Constant LACs only — the paper's configuration for large circuits.
    pub fn constants_only() -> CandidateConfig {
        CandidateConfig { substitutions: false, ..CandidateConfig::default() }
    }

    /// SASIMI configuration (constants and substitutions) with a per-target
    /// candidate budget.
    pub fn sasimi(max_subs_per_target: usize) -> CandidateConfig {
        CandidateConfig { max_subs_per_target, ..CandidateConfig::default() }
    }
}

/// Constant LACs for the given targets (or all live gates).
pub fn constant_lacs(aig: &Aig, targets: Option<&[NodeId]>) -> Vec<Lac> {
    let mut out = Vec::new();
    let mut push = |n: NodeId| {
        if aig.is_live(n) && aig.node(n).is_and() {
            out.push(Lac::const0(n));
            out.push(Lac::const1(n));
        }
    };
    match targets {
        Some(ts) => ts.iter().copied().for_each(&mut push),
        None => aig.iter_ands().for_each(&mut push),
    }
    out
}

/// SASIMI substitution LACs: for each target, the `max_subs_per_target`
/// most similar other signals (inputs or gates, either polarity), skipping
/// sources in the target's TFO cone.
pub fn sasimi_lacs(
    aig: &Aig,
    sim: &Simulator,
    cfg: &CandidateConfig,
    targets: Option<&[NodeId]>,
) -> Vec<Lac> {
    let target_list: Vec<NodeId> = match targets {
        Some(ts) => {
            ts.iter().copied().filter(|&n| aig.is_live(n) && aig.node(n).is_and()).collect()
        }
        None => aig.iter_ands().collect(),
    };
    // Substitution sources: all live inputs and gates.
    let sources: Vec<NodeId> = aig.iter_live().filter(|&n| !aig.node(n).is_const0()).collect();
    let num_bits = sim.num_patterns();
    // Garbage tail lanes (pattern counts not a multiple of 64) must not
    // count as disagreements — unmasked, `num_bits - d` could underflow.
    let tail = als_sim::tail_mask(num_bits);
    let max_dist = (cfg.max_distance_frac * num_bits as f64) as usize;
    let masked_distance = |a: &als_sim::PackedBits, b: &als_sim::PackedBits| -> usize {
        let (aw, bw) = (a.words(), b.words());
        aw.iter()
            .zip(bw)
            .enumerate()
            .map(|(i, (&x, &y))| {
                let mut w = x ^ y;
                if i + 1 == aw.len() {
                    w &= tail;
                }
                w.count_ones() as usize
            })
            .sum()
    };

    let mut out = Vec::new();
    for &t in &target_list {
        // TFO marks for cycle avoidance.
        let mut in_tfo = vec![false; aig.num_nodes()];
        for id in als_aig::cone::tfo_cone(aig, t) {
            in_tfo[id.index()] = true;
        }
        let tv = sim.value(t);
        // (distance, lac) best-k selection
        let mut best: Vec<(usize, Lac)> = Vec::new();
        for &s in &sources {
            if s == t || in_tfo[s.index()] {
                continue;
            }
            let d = masked_distance(tv, sim.value(s));
            let (dist, lit) =
                if d <= num_bits - d { (d, s.lit()) } else { (num_bits - d, !s.lit()) };
            if dist > max_dist {
                continue;
            }
            best.push((dist, Lac::substitute(t, lit)));
        }
        best.sort_by_key(|(d, lac)| (*d, lac.replacement().raw()));
        best.truncate(cfg.max_subs_per_target);
        out.extend(best.into_iter().map(|(_, lac)| lac));
    }
    out
}

/// All candidate LACs according to `cfg`, optionally restricted to
/// `targets` (the phase-two `S_cand` restriction).
pub fn generate(
    aig: &Aig,
    sim: &Simulator,
    cfg: &CandidateConfig,
    targets: Option<&[NodeId]>,
) -> Vec<Lac> {
    let mut out = Vec::new();
    if cfg.constants {
        out.extend(constant_lacs(aig, targets));
    }
    if cfg.substitutions {
        out.extend(sasimi_lacs(aig, sim, cfg, targets));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lac::LacKind;
    use als_sim::PatternSet;

    fn setup() -> (Aig, Simulator) {
        let mut aig = Aig::new("c");
        let x = aig.add_inputs("x", 6);
        let g1 = aig.and(x[0], x[1]);
        let g2 = aig.and(g1, x[2]); // very similar to g1 when x2 dense
        let g3 = aig.and(g2, x[3]);
        aig.add_output(g3, "o");
        let sim = Simulator::new(&aig, &PatternSet::exhaustive(6));
        (aig, sim)
    }

    #[test]
    fn constant_lacs_cover_all_gates() {
        let (aig, _) = setup();
        let lacs = constant_lacs(&aig, None);
        assert_eq!(lacs.len(), 2 * aig.num_ands());
        assert!(lacs.iter().any(|l| l.kind == LacKind::Const0));
        assert!(lacs.iter().any(|l| l.kind == LacKind::Const1));
    }

    #[test]
    fn constant_lacs_respect_target_restriction() {
        let (aig, _) = setup();
        let first = aig.iter_ands().next().unwrap();
        let lacs = constant_lacs(&aig, Some(&[first]));
        assert_eq!(lacs.len(), 2);
        assert!(lacs.iter().all(|l| l.target == first));
    }

    #[test]
    fn sasimi_candidates_avoid_tfo() {
        let (aig, sim) = setup();
        let cfg = CandidateConfig::sasimi(100);
        let lacs = sasimi_lacs(&aig, &sim, &cfg, None);
        for lac in &lacs {
            let LacKind::Substitute { sub } = lac.kind else { panic!() };
            let tfo = als_aig::cone::tfo_cone(&aig, lac.target);
            assert!(!tfo.contains(&sub.node()), "{lac:?} would create a cycle");
        }
    }

    #[test]
    fn sasimi_prefers_similar_signals() {
        let (aig, sim) = setup();
        let cfg = CandidateConfig { max_subs_per_target: 1, ..CandidateConfig::default() };
        let lacs = sasimi_lacs(&aig, &sim, &cfg, None);
        // the best substitute for g3 = x0&x1&x2&x3 is g2 = x0&x1&x2
        // (disagrees on 1/16 of patterns)
        let g3 = aig.iter_ands().last().unwrap();
        let best_for_g3 = lacs.iter().find(|l| l.target == g3).unwrap();
        let LacKind::Substitute { sub } = best_for_g3.kind else { panic!() };
        let d = Lac::substitute(g3, sub).change_count(&sim);
        assert!(d <= 4, "best candidate disagrees on {d}/64 patterns");
    }

    #[test]
    fn per_target_budget_is_respected() {
        let (aig, sim) = setup();
        let cfg = CandidateConfig { max_subs_per_target: 2, ..CandidateConfig::default() };
        let lacs = sasimi_lacs(&aig, &sim, &cfg, None);
        for t in aig.iter_ands() {
            assert!(lacs.iter().filter(|l| l.target == t).count() <= 2);
        }
    }

    #[test]
    fn generate_combines_kinds() {
        let (aig, sim) = setup();
        let all = generate(&aig, &sim, &CandidateConfig::default(), None);
        let consts = all.iter().filter(|l| !matches!(l.kind, LacKind::Substitute { .. })).count();
        assert_eq!(consts, 2 * aig.num_ands());
        assert!(all.len() > consts);
        let only_const = generate(&aig, &sim, &CandidateConfig::constants_only(), None);
        assert_eq!(only_const.len(), consts);
    }
}
