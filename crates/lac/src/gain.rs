//! Area gain of a LAC.

use als_aig::{Aig, NodeId};

/// Number of gates deleted by replacing `target`: the size of its maximum
/// fanout-free cone. This is the area saving used to break ties between
/// LACs with equal error increase.
pub fn area_saving(aig: &Aig, target: NodeId) -> usize {
    als_aig::cone::mffc_size(aig, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_is_mffc_size() {
        let mut aig = Aig::new("t");
        let x = aig.add_inputs("x", 3);
        let g1 = aig.and(x[0], x[1]);
        let g2 = aig.and(g1, x[2]);
        aig.add_output(g2, "o");
        // g2's MFFC is {g2, g1}
        assert_eq!(area_saving(&aig, g2.node()), 2);
        assert_eq!(area_saving(&aig, g1.node()), 1);
    }

    #[test]
    fn shared_logic_reduces_saving() {
        let mut aig = Aig::new("s");
        let x = aig.add_inputs("x", 3);
        let g1 = aig.and(x[0], x[1]);
        let g2 = aig.and(g1, x[2]);
        aig.add_output(g2, "o");
        aig.add_output(g1, "keep");
        assert_eq!(area_saving(&aig, g2.node()), 1);
    }
}
