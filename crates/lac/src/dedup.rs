//! Structural deduplication of LAC candidates.
//!
//! Two candidates are *functionally identical for error estimation* when
//! they produce the same change vector `D` at targets whose CPM rows are
//! equal: the estimated error after applying either candidate is then the
//! same number, so only one of them — the **representative** — needs to go
//! through the (expensive) batch evaluation. The others inherit its result.
//!
//! This module is deliberately generic: the engine supplies a hash key per
//! candidate (built from `D` and the target's CPM row fingerprint via
//! `als_cuts::strash`) and an *exact* equality check used to confirm that
//! two candidates with equal keys really coincide. Hash collisions therefore
//! cost a verification, never a wrong merge.

use std::collections::HashMap;

/// Class index meaning "not deduplicated": the candidate had no key (e.g.
/// its target carries no CPM row) and must be handled individually.
pub const NO_CLASS: u32 = u32::MAX;

/// The outcome of partitioning a candidate list into functional classes.
#[derive(Clone, Debug)]
pub struct DedupClasses {
    /// Per candidate: its class index, or [`NO_CLASS`] if unkeyed.
    class_of: Vec<u32>,
    /// Per class: the index of the first candidate seen in it — the
    /// representative that gets evaluated.
    reps: Vec<usize>,
    /// Number of keyed candidates (those with `Some` key).
    keyed: usize,
}

impl DedupClasses {
    /// Partitions `n` candidates into functional classes.
    ///
    /// `key_of(i)` returns the candidate's structural key, or `None` to
    /// leave it out of deduplication. `same(rep, i)` must decide *exactly*
    /// whether candidate `i` is functionally identical to the class
    /// representative `rep`; it is only called for pairs with equal keys,
    /// so a hash collision degrades into an extra comparison, not a merge.
    ///
    /// Representatives are always the first candidate of their class in
    /// list order, so evaluating `reps()` in order and broadcasting
    /// preserves the non-deduplicated result order.
    pub fn build<K, S>(n: usize, mut key_of: K, mut same: S) -> DedupClasses
    where
        K: FnMut(usize) -> Option<(u64, u64)>,
        S: FnMut(usize, usize) -> bool,
    {
        let mut class_of = vec![NO_CLASS; n];
        let mut reps: Vec<usize> = Vec::new();
        let mut keyed = 0usize;
        // Key → classes sharing that key (more than one only on collision).
        let mut by_key: HashMap<(u64, u64), Vec<u32>> = HashMap::new();
        for (i, slot) in class_of.iter_mut().enumerate() {
            let Some(key) = key_of(i) else { continue };
            keyed += 1;
            let classes = by_key.entry(key).or_default();
            match classes.iter().find(|&&c| same(reps[c as usize], i)) {
                Some(&c) => *slot = c,
                None => {
                    let c = reps.len() as u32;
                    reps.push(i);
                    classes.push(c);
                    *slot = c;
                }
            }
        }
        DedupClasses { class_of, reps, keyed }
    }

    /// Per-class representative candidate indices, in first-seen order.
    pub fn reps(&self) -> &[usize] {
        &self.reps
    }

    /// The class of candidate `i`, or `None` if it was unkeyed.
    pub fn class_of(&self, i: usize) -> Option<usize> {
        match self.class_of[i] {
            NO_CLASS => None,
            c => Some(c as usize),
        }
    }

    /// Number of functional classes.
    pub fn num_classes(&self) -> usize {
        self.reps.len()
    }

    /// Number of keyed candidates that shared a class with an earlier one —
    /// i.e. evaluations saved by deduplication.
    pub fn hits(&self) -> usize {
        self.keyed - self.reps.len()
    }

    /// Number of candidates that carried a key at all.
    pub fn keyed(&self) -> usize {
        self.keyed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_keys_merge_after_exact_verification() {
        // Candidates 0,2,4 share key (1,1); 1,3 share (2,2); 5 unkeyed.
        let keys = [Some((1, 1)), Some((2, 2)), Some((1, 1)), Some((2, 2)), Some((1, 1)), None];
        let classes = DedupClasses::build(6, |i| keys[i], |_, _| true);
        assert_eq!(classes.reps(), &[0, 1]);
        assert_eq!(classes.class_of(0), Some(0));
        assert_eq!(classes.class_of(2), Some(0));
        assert_eq!(classes.class_of(4), Some(0));
        assert_eq!(classes.class_of(1), Some(1));
        assert_eq!(classes.class_of(3), Some(1));
        assert_eq!(classes.class_of(5), None);
        assert_eq!(classes.num_classes(), 2);
        assert_eq!(classes.hits(), 3);
        assert_eq!(classes.keyed(), 5);
    }

    #[test]
    fn hash_collisions_split_into_distinct_classes() {
        // All five share one key, but `same` only accepts equal parity, so
        // the collision is caught and two classes emerge.
        let classes = DedupClasses::build(5, |_| Some((7, 7)), |rep, i| rep % 2 == i % 2);
        assert_eq!(classes.reps(), &[0, 1]);
        assert_eq!(classes.class_of(2), Some(0));
        assert_eq!(classes.class_of(3), Some(1));
        assert_eq!(classes.class_of(4), Some(0));
        assert_eq!(classes.hits(), 3);
    }

    #[test]
    fn representative_is_always_first_in_list_order() {
        let classes = DedupClasses::build(4, |i| Some((i as u64 % 2, 0)), |_, _| true);
        assert_eq!(classes.reps(), &[0, 1]);
        assert_eq!(classes.class_of(2), Some(0));
        assert_eq!(classes.class_of(3), Some(1));
    }
}
