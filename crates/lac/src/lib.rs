//! Local approximate changes (LACs).
//!
//! A LAC replaces the function of one *target node* by something cheaper:
//!
//! * **constant LAC** — replace the node by constant 0 or 1 (the only LAC
//!   kind the paper uses on large circuits),
//! * **SASIMI LAC** — substitute the node by another existing signal, in
//!   either polarity, chosen for high agreement on the simulated patterns
//!   (Fig. 1 of the paper).
//!
//! Applying a LAC deletes the target's MFFC, which is exactly the area
//! gain; the error cost is what the CPM-based analyses estimate.
//!
//! * [`lac`] — the LAC type, its change vector and application,
//! * [`candgen`] — candidate enumeration with similarity search,
//! * [`gain`] — area-saving computation,
//! * [`dedup`] — structural-class partitioning so functionally identical
//!   candidates share one evaluation.

pub mod candgen;
pub mod dedup;
pub mod gain;
pub mod lac;

pub use candgen::{constant_lacs, generate, sasimi_lacs, CandidateConfig};
pub use dedup::DedupClasses;
pub use gain::area_saving;
pub use lac::{Lac, LacKind};
