//! The LAC type.

use als_aig::{Aig, EditRecord, Lit, NodeId};
use als_sim::{PackedBits, Simulator};

/// What a LAC replaces its target with.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LacKind {
    /// Replace the target by constant 0.
    Const0,
    /// Replace the target by constant 1.
    Const1,
    /// Substitute the target by an existing signal (SASIMI).
    Substitute {
        /// The substituting literal (node with optional complement).
        sub: Lit,
    },
}

/// A local approximate change: replace `target`'s function according to
/// `kind`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Lac {
    /// The node whose function is replaced.
    pub target: NodeId,
    /// The replacement.
    pub kind: LacKind,
}

impl Lac {
    /// Constant-0 LAC on `target`.
    pub fn const0(target: NodeId) -> Lac {
        Lac { target, kind: LacKind::Const0 }
    }

    /// Constant-1 LAC on `target`.
    pub fn const1(target: NodeId) -> Lac {
        Lac { target, kind: LacKind::Const1 }
    }

    /// Substitution LAC on `target`.
    pub fn substitute(target: NodeId, sub: Lit) -> Lac {
        Lac { target, kind: LacKind::Substitute { sub } }
    }

    /// The literal the target is rewired to.
    pub fn replacement(&self) -> Lit {
        match self.kind {
            LacKind::Const0 => Lit::FALSE,
            LacKind::Const1 => Lit::TRUE,
            LacKind::Substitute { sub } => sub,
        }
    }

    /// The change vector `D`: one bit per pattern, set where the target's
    /// value would differ after the LAC. This is what the CPM converts into
    /// output flips (`D ∧ P[n][o]`).
    pub fn change_vector(&self, sim: &Simulator) -> PackedBits {
        let old = sim.value(self.target);
        match self.kind {
            LacKind::Const0 => old.clone(),
            LacKind::Const1 => old.not(),
            LacKind::Substitute { sub } => {
                let mut v = sim.lit_value(sub);
                v.xor_assign(old);
                v
            }
        }
    }

    /// Non-allocating form of [`Lac::change_vector`]: writes `D` into
    /// `out`, which must already have the simulator's word width.
    pub fn change_vector_into(&self, sim: &Simulator, out: &mut PackedBits) {
        let old = sim.value(self.target);
        match self.kind {
            LacKind::Const0 => out.copy_from(old),
            LacKind::Const1 => {
                out.copy_from(old);
                out.not_assign();
            }
            LacKind::Substitute { sub } => {
                sim.lit_value_into(sub, out);
                out.xor_assign(old);
            }
        }
    }

    /// Number of patterns on which the LAC changes the target's value.
    /// Tail lanes beyond the simulator's logical pattern count are masked
    /// out (word operations leave garbage there by design).
    pub fn change_count(&self, sim: &Simulator) -> usize {
        let d = self.change_vector(sim);
        let tail = als_sim::tail_mask(sim.num_patterns());
        let words = d.words();
        words
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let w = if i + 1 == words.len() { w & tail } else { w };
                w.count_ones() as usize
            })
            .sum()
    }

    /// Applies the LAC to the graph.
    ///
    /// # Panics
    /// Panics under the same conditions as [`als_aig::edit::replace`]
    /// (target must be a live AND, substitution source must not be in the
    /// target's TFO).
    pub fn apply(&self, aig: &mut Aig) -> EditRecord {
        als_aig::edit::replace(aig, self.target, self.replacement())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_sim::PatternSet;

    fn setup() -> (Aig, Lit, Lit, Simulator, PatternSet) {
        let mut aig = Aig::new("t");
        let x = aig.add_inputs("x", 6);
        let g = aig.and(x[0], x[1]);
        let h = aig.and(g, x[2]);
        aig.add_output(h, "o");
        let patterns = PatternSet::exhaustive(6);
        let sim = Simulator::new(&aig, &patterns);
        (aig, g, h, sim, patterns)
    }

    #[test]
    fn const_change_vectors() {
        let (_aig, g, _h, sim, _) = setup();
        let d0 = Lac::const0(g.node()).change_vector(&sim);
        assert_eq!(&d0, sim.value(g.node()));
        let d1 = Lac::const1(g.node()).change_vector(&sim);
        assert_eq!(d1, sim.value(g.node()).not());
        // exhaustive: g = x0 & x1 is 1 on 1/4 of patterns
        assert_eq!(d0.count_ones(), 16);
        assert_eq!(d1.count_ones(), 48);
    }

    #[test]
    fn substitute_change_vector_counts_disagreements() {
        let (aig, g, _h, sim, _) = setup();
        let x0 = aig.inputs()[0].lit();
        let lac = Lac::substitute(g.node(), x0);
        // g = x0&x1 vs x0: differ when x0=1, x1=0 -> 1/4 of patterns
        assert_eq!(lac.change_count(&sim), 16);
        let lac_inv = Lac::substitute(g.node(), !x0);
        // g vs !x0: equal when (x0=1,x1=1)? g=1,!x0=0 -> differ... count:
        // differ when g != !x0: g=1,x0=1 => !x0=0 differ(16); g=0,x0=0 =>
        // !x0=1 differ (32 patterns x0=0); g=0,x0=1,x1=0: !x0=0 equal.
        assert_eq!(lac_inv.change_count(&sim), 48);
    }

    #[test]
    fn change_vector_into_matches_allocating_form() {
        let (aig, g, h, sim, _) = setup();
        let x0 = aig.inputs()[0].lit();
        let lacs = [
            Lac::const0(g.node()),
            Lac::const1(h.node()),
            Lac::substitute(g.node(), x0),
            Lac::substitute(h.node(), !x0),
        ];
        let mut out = PackedBits::zeros(sim.num_words());
        for lac in lacs {
            lac.change_vector_into(&sim, &mut out);
            assert_eq!(out, lac.change_vector(&sim), "{lac:?}");
        }
    }

    #[test]
    fn apply_rewires_and_reports() {
        let (mut aig, g, h, _sim, patterns) = setup();
        let x0 = aig.inputs()[0].lit();
        let rec = Lac::substitute(g.node(), x0).apply(&mut aig);
        assert_eq!(rec.target, g.node());
        assert!(!aig.is_live(g.node()));
        als_aig::check::check(&aig).unwrap();
        // circuit now computes h = x0 & x2
        let sim = Simulator::new(&aig, &patterns);
        let expect = {
            let a = sim.lit_value(x0);
            let c = sim.lit_value(aig.inputs()[2].lit());
            a.and(&c)
        };
        assert_eq!(sim.lit_value(h), expect);
    }

    #[test]
    fn replacement_literals() {
        assert_eq!(Lac::const0(NodeId(3)).replacement(), Lit::FALSE);
        assert_eq!(Lac::const1(NodeId(3)).replacement(), Lit::TRUE);
        let s = !NodeId(5).lit();
        assert_eq!(Lac::substitute(NodeId(3), s).replacement(), s);
    }
}
