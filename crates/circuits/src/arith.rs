//! Adders — including the EPFL-style `adder` benchmark.

use als_aig::{Aig, Lit};

use crate::words;

/// Ripple-carry adder: `width`-bit operands `a`, `b`; outputs
/// `s0..s{width}` where the MSB is the carry out.
///
/// With `width = 128` this reproduces the EPFL `adder` benchmark's I/O
/// profile (256 inputs, 129 outputs).
pub fn ripple_adder(width: usize) -> Aig {
    let mut aig = Aig::new(format!("adder{width}"));
    let a = aig.add_inputs("a", width);
    let b = aig.add_inputs("b", width);
    let s = words::add(&mut aig, &a, &b, Lit::FALSE);
    words::output_word(&mut aig, &s, "s");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Carry-select adder: the operand is split into `block`-sized chunks, each
/// computed for both carry hypotheses and muxed — a larger, shallower adder
/// exercising mux-rich structures.
pub fn carry_select_adder(width: usize, block: usize) -> Aig {
    assert!(block >= 1);
    let mut aig = Aig::new(format!("csa{width}x{block}"));
    let a = aig.add_inputs("a", width);
    let b = aig.add_inputs("b", width);
    let mut out: Vec<Lit> = Vec::with_capacity(width + 1);
    let mut carry = Lit::FALSE;
    let mut lo = 0;
    while lo < width {
        let hi = (lo + block).min(width);
        let (sa, sb) = (&a[lo..hi], &b[lo..hi]);
        let sum0 = words::add(&mut aig, sa, sb, Lit::FALSE);
        let sum1 = words::add(&mut aig, sa, sb, Lit::TRUE);
        let selected = words::mux_word(&mut aig, carry, &sum1, &sum0);
        out.extend_from_slice(&selected[..hi - lo]);
        carry = selected[hi - lo];
        lo = hi;
    }
    out.push(carry);
    words::output_word(&mut aig, &out, "s");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Kogge-Stone parallel-prefix adder: same I/O profile as
/// [`ripple_adder`], logarithmic depth, considerably more gates — the
/// classic area/delay trade-off point for ALS experiments.
pub fn kogge_stone_adder(width: usize) -> Aig {
    let mut aig = Aig::new(format!("ks{width}"));
    let a = aig.add_inputs("a", width);
    let b = aig.add_inputs("b", width);
    // bit-level propagate/generate
    let mut p: Vec<Lit> = Vec::with_capacity(width);
    let mut g: Vec<Lit> = Vec::with_capacity(width);
    for i in 0..width {
        p.push(aig.xor(a[i], b[i]));
        g.push(aig.and(a[i], b[i]));
    }
    // prefix tree
    let (mut gp, mut pp) = (g.clone(), p.clone());
    let mut d = 1;
    while d < width {
        let (prev_g, prev_p) = (gp.clone(), pp.clone());
        for i in d..width {
            let through = aig.and(prev_p[i], prev_g[i - d]);
            gp[i] = aig.or(prev_g[i], through);
            pp[i] = aig.and(prev_p[i], prev_p[i - d]);
        }
        d *= 2;
    }
    // sums: carry into bit i is the full prefix generate below i
    aig.add_output(p[0], "s0");
    for i in 1..width {
        let s = aig.xor(p[i], gp[i - 1]);
        aig.add_output(s, format!("s{i}"));
    }
    aig.add_output(gp[width - 1], format!("s{width}"));
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{decode, exhaustive_output_words, random_io_words};

    #[test]
    fn kogge_stone_is_exact() {
        let aig = kogge_stone_adder(3);
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let (x, y) = ((p & 7) as u128, ((p >> 3) & 7) as u128);
            assert_eq!(*got, x + y, "pattern {p}");
        }
    }

    #[test]
    fn kogge_stone_wide_random() {
        let aig = kogge_stone_adder(32);
        for (inputs, out) in random_io_words(&aig, 2, 19) {
            let x = decode(&inputs[..32]);
            let y = decode(&inputs[32..]);
            assert_eq!(out, x + y);
        }
    }

    #[test]
    fn kogge_stone_is_shallower_but_larger() {
        let ks = kogge_stone_adder(32);
        let rc = ripple_adder(32);
        assert!(als_aig::topo::depth(&ks) < als_aig::topo::depth(&rc));
        assert!(ks.num_ands() > rc.num_ands());
    }

    #[test]
    fn ripple_adder_is_exact() {
        let aig = ripple_adder(3);
        assert_eq!(aig.num_inputs(), 6);
        assert_eq!(aig.num_outputs(), 4);
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let (x, y) = ((p & 7) as u128, ((p >> 3) & 7) as u128);
            assert_eq!(*got, x + y);
        }
    }

    #[test]
    fn wide_ripple_adder_on_random_patterns() {
        let aig = ripple_adder(32);
        als_aig::check::check(&aig).unwrap();
        for (inputs, out) in random_io_words(&aig, 4, 11) {
            let x = decode(&inputs[..32]);
            let y = decode(&inputs[32..]);
            assert_eq!(out, x + y);
        }
    }

    #[test]
    fn epfl_adder_profile() {
        let aig = ripple_adder(128);
        assert_eq!(aig.num_inputs(), 256);
        assert_eq!(aig.num_outputs(), 129);
        // paper reports 1654 AIG nodes for the EPFL adder; a plain ripple
        // construction lands in the same range
        assert!(aig.num_ands() > 800 && aig.num_ands() < 2500, "{}", aig.num_ands());
    }

    #[test]
    fn carry_select_matches_ripple() {
        let csa = carry_select_adder(4, 2);
        als_aig::check::check(&csa).unwrap();
        for (p, got) in exhaustive_output_words(&csa).iter().enumerate() {
            let (x, y) = ((p & 15) as u128, ((p >> 4) & 15) as u128);
            assert_eq!(*got, x + y, "pattern {p}");
        }
    }
}
