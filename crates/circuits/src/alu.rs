//! ISCAS-substitute ALUs.
//!
//! `c880` and `c3540` are 8-bit ALUs in the ISCAS-85 suite; their exact
//! netlists are not reproduced here. Instead, [`alu_c880`] and
//! [`alu_c3540`] generate functionally documented ALUs with the same I/O
//! profile (60/26 and 50/22) and comparable AIG size, which is what the
//! ALS experiments need.

use als_aig::{Aig, Lit};

use crate::mult::unsigned_product;
use crate::words;

fn replicate(l: Lit, n: usize) -> Vec<Lit> {
    vec![l; n]
}

/// 8-way one-hot select over 8-bit words by a 3-bit selector.
fn select8(aig: &mut Aig, sel: &[Lit], options: &[Vec<Lit>]) -> Vec<Lit> {
    assert_eq!(sel.len(), 3);
    assert_eq!(options.len(), 8);
    let width = options[0].len();
    let mut out = vec![Lit::FALSE; width];
    for (k, opt) in options.iter().enumerate() {
        let b0 = sel[0].xor_complement(k & 1 == 0);
        let b1 = sel[1].xor_complement(k & 2 == 0);
        let b2 = sel[2].xor_complement(k & 4 == 0);
        let hit0 = aig.and(b0, b1);
        let hit = aig.and(hit0, b2);
        let gated = words::gate_word(aig, opt, hit);
        for (i, &g) in gated.iter().enumerate() {
            out[i] = aig.or(out[i], g);
        }
    }
    out
}

/// The c880 substitute: an 8-bit ALU with 60 inputs and 26 outputs.
///
/// Inputs, in order: `a[8] b[8] c[8] d[8] f[3] cin use_c inv m[8] g[8]
/// ctl[6]`. The functional spec is [`alu_c880_spec`].
pub fn alu_c880() -> Aig {
    let mut aig = Aig::new("c880");
    let a = aig.add_inputs("a", 8);
    let b = aig.add_inputs("b", 8);
    let c = aig.add_inputs("c", 8);
    let d = aig.add_inputs("d", 8);
    let f = aig.add_inputs("f", 3);
    let cin = aig.add_input("cin");
    let use_c = aig.add_input("use_c");
    let inv = aig.add_input("inv");
    let m = aig.add_inputs("m", 8);
    let g = aig.add_inputs("g", 8);
    let ctl = aig.add_inputs("ctl", 6);

    let x = words::mux_word(&mut aig, use_c, &c, &b);

    // Core operations.
    let sum = words::add(&mut aig, &a, &x, cin); // 9 bits
    let (diff, geq) = words::sub(&mut aig, &a, &x);
    let andw: Vec<Lit> = a.iter().zip(&x).map(|(&p, &q)| aig.and(p, q)).collect();
    let orw: Vec<Lit> = a.iter().zip(&x).map(|(&p, &q)| aig.or(p, q)).collect();
    let xorw = words::xor_word(&mut aig, &a, &x);
    let norw: Vec<Lit> = a.iter().zip(&x).map(|(&p, &q)| aig.nor(p, q)).collect();
    let mut shl = words::shift_left(&a, 1, 8);
    shl[0] = cin;
    let options = [sum[..8].to_vec(), diff.clone(), andw, orw, xorw.clone(), norw, shl, x.clone()];
    let r_core = select8(&mut aig, &f, &options);
    let inv_word = replicate(inv, 8);
    let r = words::xor_word(&mut aig, &r_core, &inv_word);

    // Secondary result: bitwise mux of r/d by m, spiced with gated g.
    let ctl_par = aig.xor_many(&ctl);
    let r2_base = {
        let mut v = Vec::with_capacity(8);
        for i in 0..8 {
            v.push(aig.mux(m[i], r[i], d[i]));
        }
        v
    };
    let g_gate = words::gate_word(&mut aig, &g, ctl_par);
    let r2 = words::xor_word(&mut aig, &r2_base, &g_gate);

    // Flags.
    let carry = sum[8];
    let nr: Vec<Lit> = r.iter().map(|&l| !l).collect();
    let zero = aig.and_many(&nr);
    let parity = aig.xor_many(&r);
    let sign = r[7];
    let eq = {
        let nx = xorw.iter().map(|&l| !l).collect::<Vec<_>>();
        aig.and_many(&nx)
    };
    let lt = !geq;
    let any_g = aig.or_many(&g);
    let ov = aig.xor(carry, sign);
    let err = aig.and(any_g, ctl_par);

    words::output_word(&mut aig, &r, "r");
    words::output_word(&mut aig, &r2, "r2");
    for (lit, name) in [
        (carry, "carry"),
        (zero, "zero"),
        (parity, "parity"),
        (sign, "sign"),
        (eq, "eq"),
        (lt, "lt"),
        (any_g, "any_g"),
        (ctl_par, "ctl_par"),
        (ov, "ov"),
        (err, "err"),
    ] {
        aig.add_output(lit, name);
    }
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Functional specification of [`alu_c880`].
///
/// `inputs` is the 60-bit little-endian input assignment; returns the
/// 26-bit output word.
pub fn alu_c880_spec(inputs: &[bool]) -> u128 {
    let take = |lo: usize, n: usize| -> u64 {
        (0..n).fold(0u64, |acc, i| acc | (inputs[lo + i] as u64) << i)
    };
    let a = take(0, 8);
    let b = take(8, 8);
    let c = take(16, 8);
    let d = take(24, 8);
    let f = take(32, 3);
    let cin = take(35, 1);
    let use_c = take(36, 1) == 1;
    let inv = take(37, 1);
    let m = take(38, 8);
    let g = take(46, 8);
    let ctl = take(54, 6);

    let x = if use_c { c } else { b };
    let sum = a + x + cin;
    let (carry, sum8) = (sum >> 8 & 1, sum & 0xff);
    let geq = a >= x;
    let diff = a.wrapping_sub(x) & 0xff;
    let shl = (a << 1 | cin) & 0xff;
    let core = match f {
        0 => sum8,
        1 => diff,
        2 => a & x,
        3 => a | x,
        4 => a ^ x,
        5 => !(a | x) & 0xff,
        6 => shl,
        _ => x,
    };
    let r = core ^ if inv == 1 { 0xff } else { 0 };
    let ctl_par = (ctl.count_ones() & 1) as u64;
    let r2 = ((r & m) | (d & !m) & 0xff) ^ if ctl_par == 1 { g } else { 0 };
    let zero = (r == 0) as u64;
    let parity = (r.count_ones() & 1) as u64;
    let sign = r >> 7 & 1;
    let eq = (a == x) as u64;
    let lt = (!geq) as u64;
    let any_g = (g != 0) as u64;
    let ov = carry ^ sign;
    let err = any_g & ctl_par;

    let mut out = r as u128 | (r2 as u128) << 8;
    for (k, bit) in
        [carry, zero, parity, sign, eq, lt, any_g, ctl_par, ov, err].into_iter().enumerate()
    {
        out |= (bit as u128) << (16 + k);
    }
    out
}

/// The c3540 substitute: an 8-bit ALU with a 4×4 multiplier and rotator —
/// 50 inputs, 22 outputs. Spec: [`alu_c3540_spec`].
///
/// Inputs, in order: `a[8] b[8] k[8] f[4] cin m[8] sel[2] q[8] ctl[3]`.
pub fn alu_c3540() -> Aig {
    let mut aig = Aig::new("c3540");
    let a = aig.add_inputs("a", 8);
    let b = aig.add_inputs("b", 8);
    let k = aig.add_inputs("k", 8);
    let f = aig.add_inputs("f", 4);
    let cin = aig.add_input("cin");
    let m = aig.add_inputs("m", 8);
    let sel = aig.add_inputs("sel", 2);
    let q = aig.add_inputs("q", 8);
    let ctl = aig.add_inputs("ctl", 3);

    let sum = words::add(&mut aig, &a, &b, cin);
    let (diff, geq) = words::sub(&mut aig, &a, &b);
    let andw: Vec<Lit> = a.iter().zip(&b).map(|(&p, &r)| aig.and(p, r)).collect();
    let orw: Vec<Lit> = a.iter().zip(&b).map(|(&p, &r)| aig.or(p, r)).collect();
    let xorw = words::xor_word(&mut aig, &a, &b);
    let prod = unsigned_product(&mut aig, &a[..4], &b[..4]); // 8 bits

    // Rotate-left of a by sel (0..3).
    let rot1 = {
        let mut v = words::shift_left(&a, 1, 8);
        v[0] = a[7];
        v
    };
    let rot2 = {
        let mut v = words::shift_left(&a, 2, 8);
        v[0] = a[6];
        v[1] = a[7];
        v
    };
    let r01 = words::mux_word(&mut aig, sel[0], &rot1, &a);
    let r23 = words::mux_word(&mut aig, sel[0], &rot2, &rot1);
    let rot = {
        // sel=2 -> rot2, sel=3 -> rot3 = rot2 of rot1
        let rot3 = {
            let mut v = words::shift_left(&rot1, 2, 8);
            v[0] = rot1[6];
            v[1] = rot1[7];
            v
        };
        let hi = words::mux_word(&mut aig, sel[0], &rot3, &rot2);
        let _ = r23;
        words::mux_word(&mut aig, sel[1], &hi, &r01)
    };

    let options = [sum[..8].to_vec(), diff, andw, orw, xorw.clone(), prod.clone(), rot, k.to_vec()];
    let r_core = select8(&mut aig, &f[..3], &options);
    let inv_word = replicate(f[3], 8);
    let r = words::xor_word(&mut aig, &r_core, &inv_word);
    let r_final: Vec<Lit> = (0..8).map(|i| aig.mux(m[i], r[i], q[i])).collect();

    let carry = sum[8];
    let nr: Vec<Lit> = r_final.iter().map(|&l| !l).collect();
    let zero = aig.and_many(&nr);
    let parity = aig.xor_many(&r_final);
    let sign = r_final[7];
    let eqx: Vec<Lit> = xorw.iter().map(|&l| !l).collect();
    let eq = aig.and_many(&eqx);
    let gt = {
        let neq = !eq;
        aig.and(geq, neq)
    };
    let xor_k = aig.xor_many(&k);
    let and_all = aig.and_many(&r_final);
    let ctl_par = aig.xor_many(&ctl);
    let flag = aig.mux(ctl_par, carry, zero);

    words::output_word(&mut aig, &r_final, "r");
    for (lit, name) in [
        (carry, "carry"),
        (zero, "zero"),
        (parity, "parity"),
        (sign, "sign"),
        (eq, "eq"),
        (gt, "gt"),
        (xor_k, "xor_k"),
        (and_all, "and_all"),
        (ctl_par, "ctl_par"),
        (flag, "flag"),
    ] {
        aig.add_output(lit, name);
    }
    // high nibble of the product rounds out the 22 outputs
    words::output_word(&mut aig, &prod[4..], "ph");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Functional specification of [`alu_c3540`].
pub fn alu_c3540_spec(inputs: &[bool]) -> u128 {
    let take = |lo: usize, n: usize| -> u64 {
        (0..n).fold(0u64, |acc, i| acc | (inputs[lo + i] as u64) << i)
    };
    let a = take(0, 8);
    let b = take(8, 8);
    let k = take(16, 8);
    let f = take(24, 4);
    let cin = take(28, 1);
    let m = take(29, 8);
    let sel = take(37, 2);
    let q = take(39, 8);
    let ctl = take(47, 3);

    let sum = a + b + cin;
    let (carry, sum8) = (sum >> 8 & 1, sum & 0xff);
    let _geq = a >= b;
    let diff = a.wrapping_sub(b) & 0xff;
    let prod = (a & 0xf) * (b & 0xf);
    let rot = ((a << (sel as u32)) | (a >> ((8 - sel as u32) % 8))) & 0xff;
    let rot = if sel == 0 { a } else { rot };
    let core = match f & 7 {
        0 => sum8,
        1 => diff,
        2 => a & b,
        3 => a | b,
        4 => a ^ b,
        5 => prod & 0xff,
        6 => rot,
        _ => k,
    };
    let r = core ^ if f >> 3 == 1 { 0xff } else { 0 };
    let r_final = (r & m) | (q & !m) & 0xff;
    let zero = (r_final == 0) as u64;
    let parity = (r_final.count_ones() & 1) as u64;
    let sign = r_final >> 7 & 1;
    let eq = (a == b) as u64;
    let gt = (a > b) as u64;
    let xor_k = (k.count_ones() & 1) as u64;
    let and_all = (r_final == 0xff) as u64;
    let ctl_par = (ctl.count_ones() & 1) as u64;
    let flag = if ctl_par == 1 { carry } else { zero };

    let mut out = r_final as u128;
    for (i, bit) in
        [carry, zero, parity, sign, eq, gt, xor_k, and_all, ctl_par, flag].into_iter().enumerate()
    {
        out |= (bit as u128) << (8 + i);
    }
    out | ((prod >> 4 & 0xf) as u128) << 18
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_sim::{PatternSet, Simulator};

    fn check_against_spec(aig: &Aig, spec: fn(&[bool]) -> u128, words: usize, seed: u64) {
        let patterns = PatternSet::random(aig.num_inputs(), words, seed);
        let sim = Simulator::new(aig, &patterns);
        for p in 0..patterns.num_patterns() {
            let bits = patterns.pattern(p);
            assert_eq!(sim.output_word(aig, p), spec(&bits), "pattern {p}");
        }
    }

    #[test]
    fn c880_profile() {
        let aig = alu_c880();
        assert_eq!(aig.num_inputs(), 60);
        assert_eq!(aig.num_outputs(), 26);
        als_aig::check::check(&aig).unwrap();
        assert!(aig.num_ands() > 150 && aig.num_ands() < 800, "{}", aig.num_ands());
    }

    #[test]
    fn c880_matches_spec() {
        check_against_spec(&alu_c880(), alu_c880_spec, 8, 1);
    }

    #[test]
    fn c3540_profile() {
        let aig = alu_c3540();
        assert_eq!(aig.num_inputs(), 50);
        assert_eq!(aig.num_outputs(), 22);
        als_aig::check::check(&aig).unwrap();
        assert!(aig.num_ands() > 300 && aig.num_ands() < 1600, "{}", aig.num_ands());
    }

    #[test]
    fn c3540_matches_spec() {
        check_against_spec(&alu_c3540(), alu_c3540_spec, 8, 2);
    }
}
