//! The named benchmark suite (Table I of the paper).

use als_aig::Aig;

/// Scale at which to generate a benchmark.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum BenchmarkScale {
    /// The paper's widths (e.g. 128-bit adder, 16×16 multiplier).
    Paper,
    /// Reduced widths for quick experiments and CI: same structure, a few
    /// hundred to a few thousand nodes.
    #[default]
    Reduced,
}

/// All benchmark names of Table I, paper order.
pub fn benchmark_names() -> Vec<&'static str> {
    vec![
        "c880",
        "c1908",
        "c3540",
        "sm9x8",
        "sm18x14",
        "butterfly",
        "vecmul8",
        "mult16",
        "adder",
        "sqrt",
        "sin",
        "square",
        "log2",
    ]
}

/// Names of the paper's *small* group (fewer than 4000 AIG nodes).
pub fn small_circuit_names() -> Vec<&'static str> {
    vec!["c880", "c1908", "c3540", "sm9x8", "sm18x14", "mult16", "adder"]
}

/// Names of the paper's *large* group (at least 4000 AIG nodes).
pub fn large_circuit_names() -> Vec<&'static str> {
    vec!["butterfly", "vecmul8", "sqrt", "sin", "square", "log2"]
}

/// Generates a benchmark by name.
///
/// # Panics
/// Panics on an unknown name; use [`benchmark_names`] for the valid set.
pub fn benchmark(name: &str, scale: BenchmarkScale) -> Aig {
    let paper = scale == BenchmarkScale::Paper;
    match name {
        "c880" => crate::alu::alu_c880(),
        "c1908" => crate::detector::detector(),
        "c3540" => crate::alu::alu_c3540(),
        "sm9x8" => crate::mult::signed_mult(9, 8),
        "sm18x14" => {
            if paper {
                crate::mult::signed_mult(18, 14)
            } else {
                crate::mult::signed_mult(10, 8)
            }
        }
        "butterfly" => crate::butterfly::butterfly(if paper { 16 } else { 6 }),
        "vecmul8" => crate::vecmul::vecmul(8, if paper { 16 } else { 6 }),
        "mult16" => {
            if paper {
                crate::mult::mult(16, 16)
            } else {
                crate::mult::mult(8, 8)
            }
        }
        "adder" => crate::arith::ripple_adder(if paper { 128 } else { 32 }),
        "sqrt" => crate::sqrt::isqrt(if paper { 128 } else { 24 }),
        "sin" => crate::sin::sine(if paper { 24 } else { 12 }),
        "square" => crate::square::squarer(if paper { 64 } else { 16 }),
        "log2" => crate::log2::log2_unit(if paper { 32 } else { 16 }),
        other => panic!("unknown benchmark {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_generate_clean_reduced_circuits() {
        for name in benchmark_names() {
            let aig = benchmark(name, BenchmarkScale::Reduced);
            als_aig::check::check(&aig).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(aig.num_ands() > 0, "{name} is empty");
        }
    }

    #[test]
    fn groups_partition_the_suite() {
        let mut all: Vec<_> = small_circuit_names();
        all.extend(large_circuit_names());
        all.sort();
        let mut names = benchmark_names();
        names.sort();
        assert_eq!(all, names);
    }

    #[test]
    fn paper_scale_io_profiles() {
        // spot-check the headline profiles without building the giants
        let c880 = benchmark("c880", BenchmarkScale::Paper);
        assert_eq!((c880.num_inputs(), c880.num_outputs()), (60, 26));
        let sm = benchmark("sm9x8", BenchmarkScale::Paper);
        assert_eq!((sm.num_inputs(), sm.num_outputs()), (17, 17));
        let sin = benchmark("sin", BenchmarkScale::Paper);
        assert_eq!((sin.num_inputs(), sin.num_outputs()), (24, 25));
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        benchmark("nonexistent", BenchmarkScale::Reduced);
    }
}
