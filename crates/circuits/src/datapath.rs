//! Composite datapath generators: multiply-accumulate, FIR filter and
//! population count.
//!
//! These are the error-tolerant kernels approximate computing actually
//! targets (DSP inner loops, ML feature counting); they complement the
//! Table-I suite for the examples and for exploratory experiments.

use als_aig::{Aig, Lit};

use crate::mult::unsigned_product;
use crate::words;

/// Multiply-accumulate: `acc + a × b`, with an `acc_width`-bit accumulator
/// input and a full-width (non-saturating) sum output of
/// `max(acc_width, n+m) + 1` bits.
pub fn mac(n: usize, m: usize, acc_width: usize) -> Aig {
    let mut aig = Aig::new(format!("mac{n}x{m}p{acc_width}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", m);
    let acc = aig.add_inputs("acc", acc_width);
    let p = unsigned_product(&mut aig, &a, &b);
    let w = acc_width.max(n + m);
    let px = words::resize(&p, w);
    let ax = words::resize(&acc, w);
    let sum = words::add(&mut aig, &px, &ax, Lit::FALSE);
    words::output_word(&mut aig, &sum, "s");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Three-tap FIR filter with fixed coefficient words: computes
/// `c0·x0 + c1·x1 + c2·x2` over three `w`-bit unsigned samples. Constant
/// coefficients fold into shifted-add structures through the builder.
pub fn fir3(w: usize, coeffs: [u64; 3]) -> Aig {
    let mut aig = Aig::new(format!("fir3x{w}"));
    let xs: Vec<Vec<Lit>> = (0..3).map(|i| aig.add_inputs(&format!("x{i}_"), w)).collect();
    let cw = 64 - coeffs.iter().map(|c| c.leading_zeros()).min().unwrap_or(63) as usize;
    let cw = cw.max(1);
    let mut terms: Vec<Vec<Lit>> = Vec::new();
    for (x, &c) in xs.iter().zip(&coeffs) {
        let cword = words::constant(c as u128, cw);
        terms.push(unsigned_product(&mut aig, x, &cword));
    }
    let width = w + cw + 2;
    let t0 = words::resize(&terms[0], width - 1);
    let t1 = words::resize(&terms[1], width - 1);
    let mut sum01 = words::add(&mut aig, &t0, &t1, Lit::FALSE);
    sum01.truncate(width);
    let t2 = words::resize(&terms[2], width);
    let mut sum = words::add(&mut aig, &sum01, &t2, Lit::FALSE);
    sum.truncate(width + 1);
    words::output_word(&mut aig, &sum, "y");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Population count of `n` input bits (adder-tree construction).
pub fn popcount(n: usize) -> Aig {
    assert!(n >= 1);
    let mut aig = Aig::new(format!("popcount{n}"));
    let xs = aig.add_inputs("x", n);
    let mut words_list: Vec<Vec<Lit>> = xs.iter().map(|&x| vec![x]).collect();
    while words_list.len() > 1 {
        let mut next = Vec::with_capacity(words_list.len().div_ceil(2));
        let mut it = words_list.into_iter();
        while let Some(w0) = it.next() {
            match it.next() {
                Some(w1) => {
                    let width = w0.len().max(w1.len());
                    let a = words::resize(&w0, width);
                    let b = words::resize(&w1, width);
                    next.push(words::add(&mut aig, &a, &b, Lit::FALSE));
                }
                None => next.push(w0),
            }
        }
        words_list = next;
    }
    let sum = words_list.pop().expect("n >= 1");
    words::output_word(&mut aig, &sum, "c");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{decode, exhaustive_output_words, random_io_words};

    #[test]
    fn mac_matches_arithmetic() {
        let aig = mac(2, 2, 2); // 6 inputs
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let a = (p & 3) as u128;
            let b = (p >> 2 & 3) as u128;
            let acc = (p >> 4 & 3) as u128;
            assert_eq!(*got, acc + a * b, "pattern {p}");
        }
    }

    #[test]
    fn wide_mac_on_random_patterns() {
        let aig = mac(8, 8, 16);
        for (inputs, out) in random_io_words(&aig, 2, 47) {
            let a = decode(&inputs[..8]);
            let b = decode(&inputs[8..16]);
            let acc = decode(&inputs[16..]);
            assert_eq!(out, acc + a * b);
        }
    }

    #[test]
    fn fir_matches_arithmetic() {
        let coeffs = [3u64, 5, 2];
        let aig = fir3(4, coeffs);
        als_aig::check::check(&aig).unwrap();
        for (inputs, out) in random_io_words(&aig, 2, 53) {
            let x0 = decode(&inputs[..4]) as u64;
            let x1 = decode(&inputs[4..8]) as u64;
            let x2 = decode(&inputs[8..12]) as u64;
            let expect = (3 * x0 + 5 * x1 + 2 * x2) as u128;
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn popcount_matches_count_ones() {
        let aig = popcount(7);
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            assert_eq!(*got, (p as u32).count_ones() as u128, "pattern {p}");
        }
    }

    #[test]
    fn popcount_single_bit() {
        let aig = popcount(1);
        assert_eq!(aig.num_ands(), 0);
        assert_eq!(aig.num_outputs(), 1);
    }
}
