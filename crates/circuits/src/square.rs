//! Squarer — the EPFL-style `square` benchmark.

use als_aig::Aig;

use crate::mult::unsigned_product;
use crate::words;

/// Unsigned squarer: `width` input bits, `2·width` output bits computing
/// `a²`. Structural hashing shares the symmetric partial products, so the
/// squarer is noticeably smaller than a general multiplier of the same
/// width. `squarer(64)` reproduces the EPFL `square` profile (64 inputs,
/// 128 outputs).
pub fn squarer(width: usize) -> Aig {
    let mut aig = Aig::new(format!("square{width}"));
    let a = aig.add_inputs("a", width);
    let p = unsigned_product(&mut aig, &a, &a);
    words::output_word(&mut aig, &p, "p");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{decode, exhaustive_output_words, random_io_words};

    #[test]
    fn small_squarer_is_exact() {
        let aig = squarer(4);
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let x = (p & 15) as u128;
            assert_eq!(*got, x * x, "pattern {p}");
        }
    }

    #[test]
    fn squarer_shares_partial_products() {
        let sq = squarer(8);
        let mu = crate::mult::mult(8, 8);
        assert!(
            sq.num_ands() < mu.num_ands(),
            "squarer {} vs multiplier {}",
            sq.num_ands(),
            mu.num_ands()
        );
    }

    #[test]
    fn wide_squarer_on_random_patterns() {
        let aig = squarer(32);
        for (inputs, out) in random_io_words(&aig, 2, 23) {
            let x = decode(&inputs);
            assert_eq!(out, x * x);
        }
    }

    #[test]
    fn epfl_square_profile() {
        let aig = squarer(64);
        assert_eq!(aig.num_inputs(), 64);
        assert_eq!(aig.num_outputs(), 128);
        assert!(aig.num_ands() > 10_000 && aig.num_ands() < 60_000, "{}", aig.num_ands());
    }
}
