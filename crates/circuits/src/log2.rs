//! Fixed-point base-2 logarithm — substitute for the paper's 32-bit `log2`.
//!
//! The classic logarithmic-shifter construction: a priority encoder finds
//! the MSB (the integer part `e`), a one-hot barrel shifter normalises the
//! mantissa, and the fraction is the normalised mantissa with a quadratic
//! Mitchell correction `u + K·u(1−u)` evaluated by a real multiplier.

use als_aig::{Aig, Lit};

use crate::mult::unsigned_product;
use crate::words;

/// Mitchell-correction constant: `round(0.343 · 2^f) / 2^f ≈ 0.343`
/// maximises the accuracy of `log2(1+u) ≈ u + K·u(1−u)`.
fn correction_constant(f: usize) -> u128 {
    // 0.343 in binary ≈ 0.0101011111…
    (0.343f64 * (f as f64).exp2()).round() as u128
}

/// Builds the log2 unit for an `n`-bit input (`8 ≤ n ≤ 64`).
///
/// Output (`n` bits): `e · 2^f | frac`, where `e` is the 5-bit (for
/// `n ≤ 32`; 6-bit above) MSB index, `f = n − e_bits`, and `frac` the
/// corrected mantissa. Input 0 produces output 0. Bit-exact spec:
/// [`log2_spec`].
pub fn log2_unit(n: usize) -> Aig {
    assert!((8..=64).contains(&n));
    let e_bits = if n <= 32 { 5 } else { 6 };
    let f = n - e_bits;
    let mut aig = Aig::new(format!("log2_{n}"));
    let x = aig.add_inputs("x", n);

    // Priority encoder: is_msb[i] = x[i] & !x[i+1] & ... & !x[n-1].
    let mut is_msb = vec![Lit::FALSE; n];
    let mut none_higher = Lit::TRUE;
    for i in (0..n).rev() {
        is_msb[i] = aig.and(x[i], none_higher);
        none_higher = aig.and(none_higher, !x[i]);
    }

    // e[j] = OR of is_msb[i] with bit j of i set.
    let mut e = Vec::with_capacity(e_bits);
    for j in 0..e_bits {
        let terms: Vec<Lit> = (0..n).filter(|i| i >> j & 1 == 1).map(|i| is_msb[i]).collect();
        e.push(aig.or_many(&terms));
    }

    // One-hot barrel shifter: y = Σ is_msb[i] · (x << (n−1−i)).
    let mut y = vec![Lit::FALSE; n];
    for (i, &msb) in is_msb.iter().enumerate() {
        let shifted = words::shift_left(&x, n - 1 - i, n);
        let gated = words::gate_word(&mut aig, &shifted, msb);
        for (k, &g) in gated.iter().enumerate() {
            y[k] = aig.or(y[k], g);
        }
    }

    // Mantissa fraction u: top f bits below the (implicit) MSB.
    let u: Vec<Lit> = y[n - 1 - f..n - 1].to_vec();
    debug_assert_eq!(u.len(), f);

    // v = u · (1 − u) with f fraction bits (top half of the product of u
    // and its bitwise complement — the spec mirrors this exactly).
    let u_not: Vec<Lit> = u.iter().map(|&l| !l).collect();
    let vv = unsigned_product(&mut aig, &u, &u_not);
    let v = &vv[f..];

    // c = K · v >> f (constant multiplier folds to shifted adds).
    let k_word = words::constant(correction_constant(f), f);
    let cv = unsigned_product(&mut aig, v, &k_word);
    let c = words::resize(&cv[f..], f);

    // frac = u + c, saturated to f bits.
    let sum = words::add(&mut aig, &u, &c, Lit::FALSE);
    let carry = sum[f];
    let ones = words::constant(u128::MAX, f);
    let frac = words::mux_word(&mut aig, carry, &ones, &sum[..f]);

    // Assemble: low f bits = frac, top e_bits = e.
    let mut out = frac;
    out.extend_from_slice(&e);
    words::output_word(&mut aig, &out, "y");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Bit-exact functional specification of [`log2_unit`].
pub fn log2_spec(x: u128, n: usize) -> u128 {
    let e_bits = if n <= 32 { 5 } else { 6 };
    let f = n - e_bits;
    if x == 0 {
        return 0;
    }
    let e = 127 - x.leading_zeros() as usize;
    let y = (x << (n - 1 - e)) & ((1u128 << n) - 1); // normalised, MSB set
    let fmask = (1u128 << f) - 1;
    let u = (y >> (n - 1 - f)) & fmask;
    let v = (u * (!u & fmask)) >> f;
    let c = (v * correction_constant(f)) >> f;
    let sum = u + (c & fmask);
    let frac = if sum >> f != 0 { fmask } else { sum };
    (e as u128) << f | frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{decode, exhaustive_output_words, random_io_words};

    #[test]
    fn small_log2_matches_spec() {
        let aig = log2_unit(8);
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            assert_eq!(*got, log2_spec(p as u128, 8), "x={p}");
        }
    }

    #[test]
    fn spec_integer_part_is_floor_log2() {
        let n = 16;
        let f = n - 5;
        for x in [1u128, 2, 3, 7, 8, 255, 256, 65535] {
            let e = log2_spec(x, n) >> f;
            assert_eq!(e, (127 - x.leading_zeros()) as u128, "x={x}");
        }
    }

    #[test]
    fn spec_fraction_is_accurate() {
        // compare to floating-point log2 within ~0.5% of full scale
        let n = 24;
        let f = n - 5;
        for x in [3u128, 5, 100, 12345, 1 << 20, (1 << 22) + 12345] {
            let out = log2_spec(x, n);
            let approx = out as f64 / (f as f64).exp2();
            let exact = (x as f64).log2();
            assert!((approx - exact).abs() < 0.01, "x={x}: {approx} vs {exact}");
        }
    }

    #[test]
    fn paper_profile_32bit() {
        let aig = log2_unit(32);
        assert_eq!(aig.num_inputs(), 32);
        assert_eq!(aig.num_outputs(), 32);
        assert!(aig.num_ands() > 3000, "{}", aig.num_ands());
    }

    #[test]
    fn random_patterns_match_spec() {
        let aig = log2_unit(16);
        for (inputs, out) in random_io_words(&aig, 2, 3) {
            let x = decode(&inputs);
            assert_eq!(out, log2_spec(x, 16), "x={x}");
        }
    }
}
