//! Vector dot product — substitute for the paper's `vecmul8`.

use als_aig::{Aig, Lit};

use crate::mult::unsigned_product;
use crate::words;

/// Unsigned dot product of two `dim`-dimensional vectors with `w`-bit
/// entries: `2·dim·w` inputs, `2w + ⌈log2 dim⌉` outputs.
///
/// `vecmul(8, 16)` reproduces the paper's `vecmul8` profile (256 inputs,
/// 35 outputs).
pub fn vecmul(dim: usize, w: usize) -> Aig {
    assert!(dim >= 1 && w >= 1);
    let mut aig = Aig::new(format!("vecmul{dim}x{w}"));
    let a: Vec<Vec<Lit>> = (0..dim).map(|i| aig.add_inputs(&format!("a{i}_"), w)).collect();
    let b: Vec<Vec<Lit>> = (0..dim).map(|i| aig.add_inputs(&format!("b{i}_"), w)).collect();
    let mut terms: Vec<Vec<Lit>> =
        a.iter().zip(&b).map(|(x, y)| unsigned_product(&mut aig, x, y)).collect();
    // Balanced adder tree with width growth.
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        let mut it = terms.into_iter();
        while let Some(t0) = it.next() {
            match it.next() {
                Some(t1) => {
                    let width = t0.len().max(t1.len()) + 1;
                    let x = words::resize(&t0, width - 1);
                    let y = words::resize(&t1, width - 1);
                    next.push(words::add(&mut aig, &x, &y, Lit::FALSE));
                }
                None => next.push(t0),
            }
        }
        terms = next;
    }
    let sum = terms.pop().expect("dim >= 1");
    words::output_word(&mut aig, &sum, "s");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{decode, exhaustive_output_words, random_io_words};

    #[test]
    fn tiny_dot_product_is_exact() {
        let aig = vecmul(2, 2); // 8 inputs
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let a0 = (p & 3) as u128;
            let a1 = (p >> 2 & 3) as u128;
            let b0 = (p >> 4 & 3) as u128;
            let b1 = (p >> 6 & 3) as u128;
            assert_eq!(*got, a0 * b0 + a1 * b1, "pattern {p}");
        }
    }

    #[test]
    fn odd_dimension_handled() {
        let aig = vecmul(3, 2); // 12 inputs
        for (inputs, out) in random_io_words(&aig, 2, 9) {
            let mut expect = 0u128;
            for i in 0..3 {
                let a = decode(&inputs[2 * i..2 * i + 2]);
                let b = decode(&inputs[6 + 2 * i..6 + 2 * i + 2]);
                expect += a * b;
            }
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn paper_profile_vecmul8() {
        let aig = vecmul(8, 16);
        assert_eq!(aig.num_inputs(), 256);
        assert_eq!(aig.num_outputs(), 35);
        assert!(aig.num_ands() > 8000 && aig.num_ands() < 25_000, "{}", aig.num_ands());
    }

    #[test]
    fn medium_dot_product_random() {
        let aig = vecmul(4, 8);
        for (inputs, out) in random_io_words(&aig, 2, 41) {
            let mut expect = 0u128;
            for i in 0..4 {
                let a = decode(&inputs[8 * i..8 * i + 8]);
                let b = decode(&inputs[32 + 8 * i..32 + 8 * i + 8]);
                expect += a * b;
            }
            assert_eq!(out, expect);
        }
    }
}
