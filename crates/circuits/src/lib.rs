//! Benchmark circuit generators.
//!
//! The paper evaluates on ISCAS-85 circuits, EPFL arithmetic benchmarks and
//! a few extra arithmetic designs. Netlists for those are not shipped here;
//! instead, every benchmark is *generated* from a parameterised functional
//! description with matching I/O widths and comparable AIG sizes (see
//! DESIGN.md's substitution table). All generators are pure functions of
//! their parameters, produce swept (no-dangling) graphs, and are verified
//! functionally against native Rust arithmetic in their tests.
//!
//! * [`words`] — word-level construction helpers (adders, shifters, muxes),
//! * [`arith`] — ripple/carry-select adders (`adder`),
//! * [`mult`] — unsigned and signed (Baugh-Wooley) array multipliers
//!   (`mult16`, `sm9x8`, `sm18x14`),
//! * [`square`] — squarer (`square`),
//! * [`sqrt`] — restoring square root (`sqrt`),
//! * [`sin`] — fixed-point sine approximation (`sin`),
//! * [`log2`] — fixed-point base-2 logarithm (`log2`),
//! * [`butterfly`] — radix-2 FFT butterfly (`butterfly`),
//! * [`vecmul`] — dot product of two vectors (`vecmul8`),
//! * [`alu`] — ISCAS-substitute ALUs (`c880`, `c3540`),
//! * [`detector`] — ISCAS-substitute Hamming detector (`c1908`),
//! * [`suite`] — the named Table-I benchmark suite at paper or reduced
//!   scale.

pub mod alu;
pub mod arith;
pub mod butterfly;
pub mod datapath;
pub mod detector;
pub mod log2;
pub mod mult;
pub mod sin;
pub mod sqrt;
pub mod square;
pub mod suite;
#[cfg(test)]
pub(crate) mod testutil;
pub mod vecmul;
pub mod words;

pub use suite::{benchmark, benchmark_names, BenchmarkScale};
