//! ISCAS-substitute error detector (c1908 profile: 33 inputs, 25 outputs).
//!
//! A single-error-correcting, double-error-detecting (SEC-DED) Hamming
//! checker over a 16-bit data word: the syndrome locates a flipped bit,
//! the overall parity distinguishes single from double errors, and the
//! corrected word is produced combinationally — the same
//! "16-bit detector" role c1908 plays in the ISCAS suite.

use als_aig::{Aig, Lit};

use crate::words;

/// Builds the detector.
///
/// Inputs, in order: `data[16] chk[6] en mask[7] clr[3]`. Outputs:
/// `corrected[16] s[5] err derr po band`. Spec: [`detector_spec`].
pub fn detector() -> Aig {
    let mut aig = Aig::new("c1908");
    let data = aig.add_inputs("d", 16);
    let chk = aig.add_inputs("chk", 6);
    let en = aig.add_input("en");
    let mask = aig.add_inputs("mask", 7);
    let clr = aig.add_inputs("clr", 3);

    // Syndrome: s_j = XOR of data[i] with bit j of (i+1) set, XOR chk[j].
    let mut s = Vec::with_capacity(5);
    for (j, &chk_j) in chk.iter().enumerate().take(5) {
        let terms: Vec<Lit> = (0..16).filter(|i| (i + 1) >> j & 1 == 1).map(|i| data[i]).collect();
        let parity = aig.xor_many(&terms);
        s.push(aig.xor(parity, chk_j));
    }
    // Overall parity: all data and check bits.
    let all: Vec<Lit> = data.iter().chain(chk.iter()).copied().collect();
    let po = aig.xor_many(&all);

    // Correction: flip data[i] when the syndrome equals i+1 (and enabled,
    // not cleared).
    let clr_any = aig.or_many(&clr);
    let fix_en = aig.and(en, !clr_any);
    let mut corrected = Vec::with_capacity(16);
    for (i, &d) in data.iter().enumerate() {
        let code = i + 1;
        let match_bits: Vec<Lit> =
            (0..5).map(|j| s[j].xor_complement(code >> j & 1 == 0)).collect();
        let hit = aig.and_many(&match_bits);
        let flip = aig.and(hit, fix_en);
        corrected.push(aig.xor(d, flip));
    }

    let s_any = aig.or_many(&s);
    let err = aig.or(s_any, po);
    let derr = aig.and(s_any, !po);
    let band = {
        let mp = aig.xor_many(&mask);
        aig.and(mp, en)
    };

    words::output_word(&mut aig, &corrected, "c");
    words::output_word(&mut aig, &s, "s");
    for (lit, name) in [(err, "err"), (derr, "derr"), (po, "po"), (band, "band")] {
        aig.add_output(lit, name);
    }
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Functional specification of [`detector`].
pub fn detector_spec(inputs: &[bool]) -> u128 {
    let take = |lo: usize, n: usize| -> u64 {
        (0..n).fold(0u64, |acc, i| acc | (inputs[lo + i] as u64) << i)
    };
    let data = take(0, 16);
    let chk = take(16, 6);
    let en = take(22, 1) == 1;
    let mask = take(23, 7);
    let clr = take(30, 3);

    let mut s = 0u64;
    for j in 0..5 {
        let mut p = 0u64;
        for i in 0..16 {
            if (i + 1) >> j & 1 == 1 {
                p ^= data >> i & 1;
            }
        }
        s |= (p ^ (chk >> j & 1)) << j;
    }
    let po = ((data.count_ones() + chk.count_ones()) & 1) as u64;
    let fix_en = en && clr == 0;
    let mut corrected = data;
    if fix_en && (1..=16).contains(&s) {
        corrected ^= 1 << (s - 1);
    }
    let s_any = (s != 0) as u64;
    let err = s_any | po;
    let derr = s_any & (po ^ 1);
    let band = ((mask.count_ones() & 1) as u64) & en as u64;

    corrected as u128
        | (s as u128) << 16
        | (err as u128) << 21
        | (derr as u128) << 22
        | (po as u128) << 23
        | (band as u128) << 24
}

#[cfg(test)]
mod tests {
    use super::*;
    use als_sim::{PatternSet, Simulator};

    #[test]
    fn profile() {
        let aig = detector();
        assert_eq!(aig.num_inputs(), 33);
        assert_eq!(aig.num_outputs(), 25);
        als_aig::check::check(&aig).unwrap();
        assert!(aig.num_ands() > 150 && aig.num_ands() < 700, "{}", aig.num_ands());
    }

    #[test]
    fn matches_spec_on_random_patterns() {
        let aig = detector();
        let patterns = PatternSet::random(aig.num_inputs(), 8, 3);
        let sim = Simulator::new(&aig, &patterns);
        for p in 0..patterns.num_patterns() {
            let bits = patterns.pattern(p);
            assert_eq!(sim.output_word(&aig, p), detector_spec(&bits), "pattern {p}");
        }
    }

    #[test]
    fn corrects_single_bit_errors() {
        // Build a codeword: data with matching check bits, flip one data
        // bit, expect correction.
        let data: u64 = 0b1011_0010_1100_0101;
        let mut chk = 0u64;
        for j in 0..5 {
            let mut p = 0u64;
            for i in 0..16 {
                if (i + 1) >> j & 1 == 1 {
                    p ^= data >> i & 1;
                }
            }
            chk |= p << j;
        }
        // overall parity bit chk[5] chosen so po = 0
        let par = (data.count_ones() + chk.count_ones()) & 1;
        chk |= (par as u64) << 5;
        for flip in 0..16 {
            let bad = data ^ (1 << flip);
            let mut inputs = vec![false; 33];
            for (i, slot) in inputs.iter_mut().enumerate().take(16) {
                *slot = bad >> i & 1 == 1;
            }
            for j in 0..6 {
                inputs[16 + j] = chk >> j & 1 == 1;
            }
            inputs[22] = true; // en
            let out = detector_spec(&inputs);
            let corrected = (out & 0xffff) as u64;
            assert_eq!(corrected, data, "flip {flip}");
            assert_eq!(out >> 21 & 1, 1, "err raised");
        }
    }
}
