//! Array multipliers: unsigned, and signed via conditional negation.

use als_aig::{Aig, Lit};

use crate::words;

/// Builds the partial-product accumulation of an unsigned `a × b` inside an
/// existing graph and returns the `a.len() + b.len()`-bit product word.
pub fn unsigned_product(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return Vec::new();
    }
    // Row 0: a * b0.
    let mut acc: Vec<Lit> = words::gate_word(aig, a, b[0]);
    let mut out: Vec<Lit> = vec![acc.remove(0)];
    for (j, &bj) in b.iter().enumerate().skip(1) {
        let row = words::gate_word(aig, a, bj);
        // acc currently holds bits j..j+n-1 of the running sum (n-1 bits
        // after removing the emitted LSB, padded back to n).
        let acc_padded = words::resize(&acc, n);
        let mut sum = words::add(aig, &acc_padded, &row, Lit::FALSE);
        out.push(sum.remove(0));
        acc = sum; // n bits remain
        let _ = j;
    }
    out.extend(acc);
    debug_assert_eq!(out.len(), n + m);
    out
}

/// Wallace-tree unsigned multiplier: the partial-product matrix is reduced
/// column-wise with 3:2 compressors (full adders) until two rows remain,
/// then a ripple addition finishes — logarithmic reduction depth, the
/// standard fast-multiplier architecture.
pub fn wallace_mult(n: usize, m: usize) -> Aig {
    let mut aig = Aig::new(format!("wallace{n}x{m}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", m);
    let width = n + m;
    // column-wise partial products
    let mut cols: Vec<Vec<Lit>> = vec![Vec::new(); width];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = aig.and(ai, bj);
            cols[i + j].push(pp);
        }
    }
    // 3:2 reduction until every column has at most two bits
    while cols.iter().any(|c| c.len() > 2) {
        let mut next: Vec<Vec<Lit>> = vec![Vec::new(); width];
        for (c, col) in cols.iter().enumerate() {
            let mut it = col.chunks(3);
            for chunk in &mut it {
                match *chunk {
                    [x, y, z] => {
                        let (s, co) = aig.full_adder(x, y, z);
                        next[c].push(s);
                        if c + 1 < width {
                            next[c + 1].push(co);
                        }
                    }
                    [x, y] => {
                        let (s, co) = aig.half_adder(x, y);
                        next[c].push(s);
                        if c + 1 < width {
                            next[c + 1].push(co);
                        }
                    }
                    [x] => next[c].push(x),
                    _ => unreachable!(),
                }
            }
        }
        cols = next;
    }
    // final carry-propagate addition of the two remaining rows
    let row = |cols: &[Vec<Lit>], k: usize| -> Vec<Lit> {
        cols.iter().map(|c| c.get(k).copied().unwrap_or(Lit::FALSE)).collect()
    };
    let (r0, r1) = (row(&cols, 0), row(&cols, 1));
    let mut sum = words::add(&mut aig, &r0, &r1, Lit::FALSE);
    sum.truncate(width);
    words::output_word(&mut aig, &sum, "p");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Builds a signed (two's complement) product inside an existing graph:
/// magnitudes are multiplied unsigned and the result conditionally negated.
/// Returns the `a.len() + b.len()`-bit product word.
pub fn signed_product(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (n, m) = (a.len(), b.len());
    let (sa, sb) = (a[n - 1], b[m - 1]);
    let neg_a = words::negate(aig, a);
    let mag_a = words::mux_word(aig, sa, &neg_a, a);
    let neg_b = words::negate(aig, b);
    let mag_b = words::mux_word(aig, sb, &neg_b, b);
    let mag_p = unsigned_product(aig, &mag_a, &mag_b);
    let sp = aig.xor(sa, sb);
    let neg_p = words::negate(aig, &mag_p);
    words::mux_word(aig, sp, &neg_p, &mag_p)
}

/// Unsigned `n × m` array multiplier: inputs `a0..`, `b0..`; outputs the
/// `n+m`-bit product. `mult(16, 16)` reproduces the paper's `mult16`
/// profile (32 inputs, 32 outputs).
pub fn mult(n: usize, m: usize) -> Aig {
    let mut aig = Aig::new(format!("mult{n}x{m}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", m);
    let p = unsigned_product(&mut aig, &a, &b);
    words::output_word(&mut aig, &p, "p");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Signed (two's complement) `n × m` multiplier via sign-magnitude
/// decomposition: magnitudes are multiplied unsigned and the product is
/// conditionally negated. `signed_mult(9, 8)` and `signed_mult(18, 14)`
/// reproduce the paper's `sm9×8` and `sm18×14` profiles.
pub fn signed_mult(n: usize, m: usize) -> Aig {
    let mut aig = Aig::new(format!("sm{n}x{m}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", m);
    let p = signed_product(&mut aig, &a, &b);
    words::output_word(&mut aig, &p, "p");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{decode, exhaustive_output_words, random_io_words};

    #[test]
    fn small_unsigned_mult_is_exact() {
        let aig = mult(3, 3);
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let (x, y) = ((p & 7) as u128, ((p >> 3) & 7) as u128);
            assert_eq!(*got, x * y, "pattern {p}");
        }
    }

    #[test]
    fn asymmetric_unsigned_mult_is_exact() {
        let aig = mult(4, 2);
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let (x, y) = ((p & 15) as u128, ((p >> 4) & 3) as u128);
            assert_eq!(*got, x * y, "pattern {p}");
        }
    }

    #[test]
    fn mult16_profile() {
        let aig = mult(16, 16);
        assert_eq!(aig.num_inputs(), 32);
        assert_eq!(aig.num_outputs(), 32);
        // paper: 3039 AIG nodes for mult16
        assert!(aig.num_ands() > 1500 && aig.num_ands() < 5000, "{}", aig.num_ands());
    }

    #[test]
    fn wide_unsigned_mult_on_random_patterns() {
        let aig = mult(16, 16);
        for (inputs, out) in random_io_words(&aig, 2, 5) {
            let x = decode(&inputs[..16]);
            let y = decode(&inputs[16..]);
            assert_eq!(out, x * y);
        }
    }

    #[test]
    fn wallace_small_is_exact() {
        let aig = wallace_mult(3, 3);
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let (x, y) = ((p & 7) as u128, ((p >> 3) & 7) as u128);
            assert_eq!(*got, x * y, "pattern {p}");
        }
    }

    #[test]
    fn wallace_wide_random() {
        let aig = wallace_mult(12, 12);
        for (inputs, out) in random_io_words(&aig, 2, 29) {
            let x = decode(&inputs[..12]);
            let y = decode(&inputs[12..]);
            assert_eq!(out, x * y);
        }
    }

    #[test]
    fn wallace_is_shallower_than_array() {
        let w = wallace_mult(16, 16);
        let a = mult(16, 16);
        assert!(als_aig::topo::depth(&w) < als_aig::topo::depth(&a));
    }

    fn as_signed(v: u128, bits: usize) -> i128 {
        let v = v as i128;
        if v >> (bits - 1) & 1 == 1 {
            v - (1 << bits)
        } else {
            v
        }
    }

    #[test]
    fn small_signed_mult_is_exact() {
        let aig = signed_mult(3, 3);
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let x = as_signed((p & 7) as u128, 3);
            let y = as_signed(((p >> 3) & 7) as u128, 3);
            let expect = ((x * y) as u128) & 0x3f;
            assert_eq!(*got, expect, "pattern {p}: {x} * {y}");
        }
    }

    #[test]
    fn signed_mult_extremes() {
        // -4 * -4 = 16 for 3x3 — covered above; spot-check 9x8 on random
        // patterns including sign-bit-heavy ones.
        let aig = signed_mult(9, 8);
        assert_eq!(aig.num_inputs(), 17);
        assert_eq!(aig.num_outputs(), 17);
        for (inputs, out) in random_io_words(&aig, 4, 17) {
            let x = as_signed(decode(&inputs[..9]), 9);
            let y = as_signed(decode(&inputs[9..]), 8);
            let expect = ((x * y) as u128) & ((1 << 17) - 1);
            assert_eq!(out, expect, "{x} * {y}");
        }
    }

    #[test]
    fn sm18x14_profile() {
        let aig = signed_mult(18, 14);
        assert_eq!(aig.num_inputs(), 32);
        assert_eq!(aig.num_outputs(), 32);
        assert!(aig.num_ands() > 1200 && aig.num_ands() < 5000, "{}", aig.num_ands());
    }
}
