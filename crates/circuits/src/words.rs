//! Word-level construction helpers.
//!
//! Words are little-endian literal slices (`words[0]` is the LSB). All
//! helpers fold constants through [`Aig::and`]'s simplification, so feeding
//! constant literals generates no dead logic.

use als_aig::{Aig, Lit};

/// A constant word of `width` bits with value `value`.
pub fn constant(value: u128, width: usize) -> Vec<Lit> {
    (0..width).map(|i| if value >> i & 1 == 1 { Lit::TRUE } else { Lit::FALSE }).collect()
}

/// Ripple-carry addition: returns `width+1` bits (`a + b + cin`, carry out
/// as MSB). Operands must have equal width.
pub fn add(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> Vec<Lit> {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = cin;
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = aig.full_adder(x, y, carry);
        out.push(s);
        carry = c;
    }
    out.push(carry);
    out
}

/// Two's-complement subtraction `a - b`: returns `width` result bits plus a
/// final `borrow-free` flag (1 = no borrow, i.e. `a >= b`).
pub fn sub(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
    let mut s = add(aig, a, &nb, Lit::TRUE);
    let no_borrow = s.pop().expect("carry bit");
    (s, no_borrow)
}

/// Bitwise mux: `if sel { t } else { e }`, elementwise.
pub fn mux_word(aig: &mut Aig, sel: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    assert_eq!(t.len(), e.len());
    t.iter().zip(e).map(|(&x, &y)| aig.mux(sel, x, y)).collect()
}

/// Zero-extends (or truncates) a word to `width` bits.
pub fn resize(word: &[Lit], width: usize) -> Vec<Lit> {
    let mut out: Vec<Lit> = word.iter().copied().take(width).collect();
    while out.len() < width {
        out.push(Lit::FALSE);
    }
    out
}

/// Logical left shift by a fixed amount, keeping `width` bits.
pub fn shift_left(word: &[Lit], by: usize, width: usize) -> Vec<Lit> {
    let mut out = vec![Lit::FALSE; width];
    for (i, &l) in word.iter().enumerate() {
        if i + by < width {
            out[i + by] = l;
        }
    }
    out
}

/// Bitwise AND of a word with a single gating literal.
pub fn gate_word(aig: &mut Aig, word: &[Lit], gate: Lit) -> Vec<Lit> {
    word.iter().map(|&l| aig.and(l, gate)).collect()
}

/// Bitwise XOR of two equal-width words.
pub fn xor_word(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| aig.xor(x, y)).collect()
}

/// Two's-complement negation of a word (width preserved).
pub fn negate(aig: &mut Aig, a: &[Lit]) -> Vec<Lit> {
    let inverted: Vec<Lit> = a.iter().map(|&l| !l).collect();
    let one = constant(1, a.len());
    let mut s = add(aig, &inverted, &one, Lit::FALSE);
    s.pop();
    s
}

/// Registers a word as primary outputs named `prefix{i}`.
pub fn output_word(aig: &mut Aig, word: &[Lit], prefix: &str) {
    for (i, &l) in word.iter().enumerate() {
        aig.add_output(l, format!("{prefix}{i}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::exhaustive_output_words;

    #[test]
    fn add_matches_arithmetic() {
        let mut aig = Aig::new("add3");
        let a = aig.add_inputs("a", 3);
        let b = aig.add_inputs("b", 3);
        let s = add(&mut aig, &a, &b, Lit::FALSE);
        output_word(&mut aig, &s, "s");
        als_aig::edit::sweep_dangling(&mut aig);
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let (x, y) = ((p & 7) as u128, ((p >> 3) & 7) as u128);
            assert_eq!(*got, x + y, "pattern {p}");
        }
    }

    #[test]
    fn sub_matches_arithmetic() {
        let mut aig = Aig::new("sub3");
        let a = aig.add_inputs("a", 3);
        let b = aig.add_inputs("b", 3);
        let (d, no_borrow) = sub(&mut aig, &a, &b);
        output_word(&mut aig, &d, "d");
        aig.add_output(no_borrow, "geq");
        als_aig::edit::sweep_dangling(&mut aig);
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let (x, y) = ((p & 7) as i64, ((p >> 3) & 7) as i64);
            let expect = ((x - y) & 7) as u128 | (((x >= y) as u128) << 3);
            assert_eq!(*got, expect, "pattern {p}");
        }
    }

    #[test]
    fn negate_matches_arithmetic() {
        let mut aig = Aig::new("neg");
        let a = aig.add_inputs("a", 4);
        let padding = aig.add_inputs("pad", 2);
        let n = negate(&mut aig, &a);
        output_word(&mut aig, &n, "n");
        als_aig::edit::sweep_dangling(&mut aig);
        let _ = padding;
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            let x = (p & 15) as u128;
            assert_eq!(*got, x.wrapping_neg() & 15, "pattern {p}");
        }
    }

    #[test]
    fn shifts_and_resize() {
        let w = constant(0b1011, 4);
        assert_eq!(shift_left(&w, 1, 4), constant(0b0110, 4));
        assert_eq!(resize(&w, 6), constant(0b1011, 6));
        assert_eq!(resize(&w, 2), constant(0b11, 2));
    }

    #[test]
    fn constants_fold_through_gates() {
        let mut aig = Aig::new("k");
        let a = aig.add_inputs("a", 2);
        let zero = constant(0, 2);
        let s = add(&mut aig, &a, &zero, Lit::FALSE);
        // a + 0 must not materialise a full adder chain
        assert_eq!(&s[..2], a.as_slice());
        assert_eq!(aig.num_ands(), 0);
    }
}
