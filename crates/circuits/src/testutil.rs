//! Shared helpers for the generator tests.

use als_aig::Aig;
use als_sim::{PatternSet, Simulator};

/// Simulates the circuit exhaustively (inputs padded to at least 6) and
/// decodes the weighted output word for every input assignment, indexed by
/// the input-bit encoding of the pattern.
pub(crate) fn exhaustive_output_words(aig: &Aig) -> Vec<u128> {
    let n = aig.num_inputs().max(6);
    assert!(n <= 20, "exhaustive check limited to 20 inputs");
    let patterns = PatternSet::exhaustive(n);
    let sim = Simulator::new(aig, &patterns);
    (0..1usize << aig.num_inputs()).map(|p| sim.output_word(aig, p)).collect()
}

/// Simulates the circuit on `words * 64` random patterns and returns, per
/// pattern, the tuple of (input assignment bits, output word).
pub(crate) fn random_io_words(aig: &Aig, words: usize, seed: u64) -> Vec<(Vec<bool>, u128)> {
    let patterns = PatternSet::random(aig.num_inputs(), words, seed);
    let sim = Simulator::new(aig, &patterns);
    (0..patterns.num_patterns()).map(|p| (patterns.pattern(p), sim.output_word(aig, p))).collect()
}

/// Decodes a little-endian slice of bools into a u128.
pub(crate) fn decode(bits: &[bool]) -> u128 {
    bits.iter().enumerate().fold(0u128, |acc, (i, &b)| acc | (b as u128) << i)
}
