//! Fixed-point sine unit — substitute for the paper's 24-bit `sin`.
//!
//! The input is an `n`-bit phase covering one full period; the output is a
//! signed fixed-point sine value of `n + 1` bits. The unit exploits
//! quarter-wave symmetry and evaluates the quadratic approximation
//! `sin(π/2·u) ≈ 2u − u²` on the quadrant-local phase — one real squarer
//! plus negation/mux logic, which is the same multiplier-dominated
//! structure as the original benchmark.

use als_aig::Aig;

use crate::mult::unsigned_product;
use crate::words;

/// Builds the sine unit for an `n`-bit phase input (`n ≥ 6`).
///
/// Output: `n + 1` bits, two's complement, value `sine(x) · 2^(n-2)`.
/// The bit-exact functional specification is [`sine_spec`].
pub fn sine(n: usize) -> Aig {
    assert!(n >= 6, "phase width must be at least 6");
    let f = n - 2; // quadrant-local fraction bits
    let mut aig = Aig::new(format!("sin{n}"));
    let x = aig.add_inputs("x", n);
    let t = &x[..f]; // phase within quadrant
    let q0 = x[n - 2]; // odd quadrant -> reflect
    let sign = x[n - 1]; // second half-period -> negate

    // u = t or reflected ~t.
    let t_not: Vec<_> = t.iter().map(|&l| !l).collect();
    let u = words::mux_word(&mut aig, q0, &t_not, t);

    // u² with f fraction bits: top f bits of the 2f-bit product.
    let uu = unsigned_product(&mut aig, &u, &u);
    let u2 = &uu[f..];
    debug_assert_eq!(u2.len(), f);

    // m = 2u − u² at f+1 bits (2u has f+1 bits, u² < 2^f, m ≤ 2^f).
    let two_u = words::shift_left(&u, 1, f + 1);
    let u2w = words::resize(u2, f + 1);
    let (m, _no_borrow) = words::sub(&mut aig, &two_u, &u2w);

    // signed output: ±m at n+1 bits.
    let m_ext = words::resize(&m, n + 1);
    let m_neg = words::negate(&mut aig, &m_ext);
    let out = words::mux_word(&mut aig, sign, &m_neg, &m_ext);
    words::output_word(&mut aig, &out, "s");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Bit-exact functional specification of [`sine`], on plain integers.
///
/// Returns the output word (n+1 bits, two's complement encoding).
pub fn sine_spec(x: u128, n: usize) -> u128 {
    let f = n - 2;
    let fmask = (1u128 << f) - 1;
    let t = x & fmask;
    let q0 = x >> (n - 2) & 1 == 1;
    let sign = x >> (n - 1) & 1 == 1;
    let u = if q0 { !t & fmask } else { t };
    let u2 = (u * u) >> f;
    let m = (u << 1) - u2; // ≤ 2^f, fits f+1 bits
    let width_mask = (1u128 << (n + 1)) - 1;
    if sign {
        m.wrapping_neg() & width_mask
    } else {
        m & width_mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{decode, exhaustive_output_words, random_io_words};

    #[test]
    fn small_sine_matches_spec() {
        let aig = sine(7);
        als_aig::check::check(&aig).unwrap();
        assert_eq!(aig.num_outputs(), 8);
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            assert_eq!(*got, sine_spec(p as u128, 7), "x={p}");
        }
    }

    #[test]
    fn sine_is_odd_symmetric() {
        // sine(x + half period) == -sine(x) in the spec
        let n = 10;
        let half = 1u128 << (n - 1);
        let mask = (1u128 << (n + 1)) - 1;
        for x in 0..half {
            let a = sine_spec(x, n);
            let b = sine_spec(x + half, n);
            assert_eq!(b, a.wrapping_neg() & mask, "x={x}");
        }
    }

    #[test]
    fn peak_at_quarter_period() {
        let n = 12;
        // at u = max the quadratic reaches ~1.0 · 2^(n-2)
        let quarter = (1u128 << (n - 2)) - 1;
        let v = sine_spec(quarter, n);
        assert!(v >= (1 << (n - 2)) - 4, "peak {v}");
    }

    #[test]
    fn paper_profile_24bit() {
        let aig = sine(24);
        assert_eq!(aig.num_inputs(), 24);
        assert_eq!(aig.num_outputs(), 25);
        assert!(aig.num_ands() > 2000 && aig.num_ands() < 12_000, "{}", aig.num_ands());
    }

    #[test]
    fn wide_sine_random_patterns_match_spec() {
        let aig = sine(16);
        for (inputs, out) in random_io_words(&aig, 2, 77) {
            let x = decode(&inputs);
            assert_eq!(out, sine_spec(x, 16));
        }
    }
}
