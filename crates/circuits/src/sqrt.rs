//! Restoring integer square root — the EPFL-style `sqrt` benchmark.

use als_aig::{Aig, Lit};

use crate::words;

/// Restoring square root: `2·k` input bits, `k` output bits computing
/// `⌊√x⌋`. The digit recurrence is fully unrolled:
///
/// ```text
/// rem = 0; root = 0
/// for i = k-1 .. 0:
///     rem   = rem · 4 + x[2i+1..2i]
///     trial = root · 4 + 1
///     root  = root · 2
///     if rem ≥ trial { rem -= trial; root += 1 }
/// ```
///
/// `isqrt(128)` reproduces the EPFL `sqrt` profile (128 inputs,
/// 64 outputs).
pub fn isqrt(input_bits: usize) -> Aig {
    assert!(input_bits >= 2 && input_bits.is_multiple_of(2), "input width must be even");
    let k = input_bits / 2;
    let mut aig = Aig::new(format!("sqrt{input_bits}"));
    let x = aig.add_inputs("x", input_bits);

    // Remainder needs k+2 bits: rem < 2·root + 1 ≤ 2^{k+1}.
    let w = k + 2;
    let mut rem: Vec<Lit> = vec![Lit::FALSE; w];
    let mut root: Vec<Lit> = Vec::new(); // little-endian, grows by one per step
    for step in 0..k {
        let i = k - 1 - step;
        // rem = rem << 2 | x[2i+1 : 2i]
        let mut shifted = vec![x[2 * i], x[2 * i + 1]];
        shifted.extend_from_slice(&rem[..w - 2]);
        debug_assert_eq!(shifted.len(), w);
        // trial = root << 2 | 1  (same width as rem)
        let mut trial = vec![Lit::TRUE, Lit::FALSE];
        trial.extend_from_slice(&root);
        let trial = words::resize(&trial, w);
        let (diff, no_borrow) = words::sub(&mut aig, &shifted, &trial);
        rem = words::mux_word(&mut aig, no_borrow, &diff, &shifted);
        // root = root << 1 | no_borrow (little-endian: push at LSB end)
        root.insert(0, no_borrow);
    }
    words::output_word(&mut aig, &root, "r");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{decode, exhaustive_output_words, random_io_words};

    fn isqrt_ref(x: u128) -> u128 {
        let mut r = (x as f64).sqrt() as u128;
        while r * r > x {
            r -= 1;
        }
        while (r + 1) * (r + 1) <= x {
            r += 1;
        }
        r
    }

    #[test]
    fn small_sqrt_is_exact() {
        let aig = isqrt(8);
        als_aig::check::check(&aig).unwrap();
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            assert_eq!(*got, isqrt_ref(p as u128), "sqrt({p})");
        }
    }

    #[test]
    fn tiny_sqrt_cases() {
        let aig = isqrt(6);
        for (p, got) in exhaustive_output_words(&aig).iter().enumerate() {
            assert_eq!(*got, isqrt_ref(p as u128), "sqrt({p})");
        }
    }

    #[test]
    fn wide_sqrt_on_random_patterns() {
        let aig = isqrt(32);
        for (inputs, out) in random_io_words(&aig, 2, 31) {
            let x = decode(&inputs);
            assert_eq!(out, isqrt_ref(x), "sqrt({x})");
        }
    }

    #[test]
    fn epfl_sqrt_profile() {
        let aig = isqrt(128);
        assert_eq!(aig.num_inputs(), 128);
        assert_eq!(aig.num_outputs(), 64);
        assert!(aig.num_ands() > 10_000 && aig.num_ands() < 45_000, "{}", aig.num_ands());
    }
}
