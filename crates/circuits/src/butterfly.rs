//! Radix-2 FFT butterfly — substitute for the paper's `butterfly`.
//!
//! Computes `X = A + W·B` and `Y = A − W·B` on complex fixed-point values:
//! `A` has `w+1`-bit components, `B` has `w+1`-bit components, and the
//! twiddle `W` has `w`-bit components interpreted in `Q1.(w−1)` (so the
//! product is scaled back by `w−1`). With `w = 16` this matches the
//! paper's 100-input / 72-output profile.

use als_aig::{Aig, Lit};

use crate::mult::signed_product;
use crate::words;

fn sign_extend(word: &[Lit], width: usize) -> Vec<Lit> {
    let mut out: Vec<Lit> = word.to_vec();
    let sign = *word.last().expect("non-empty word");
    while out.len() < width {
        out.push(sign);
    }
    out.truncate(width);
    out
}

fn signed_add(aig: &mut Aig, a: &[Lit], b: &[Lit], width: usize) -> Vec<Lit> {
    let ax = sign_extend(a, width);
    let bx = sign_extend(b, width);
    let mut s = words::add(aig, &ax, &bx, Lit::FALSE);
    s.truncate(width);
    s
}

fn signed_sub(aig: &mut Aig, a: &[Lit], b: &[Lit], width: usize) -> Vec<Lit> {
    let nb = words::negate(aig, &sign_extend(b, width));
    signed_add(aig, a, &nb, width)
}

/// Arithmetic right shift by `s`, keeping `width` bits.
fn asr(word: &[Lit], s: usize, width: usize) -> Vec<Lit> {
    sign_extend(&word[s.min(word.len() - 1)..], width)
}

/// Builds the butterfly for `w`-bit twiddle components (`w ≥ 3`).
///
/// Inputs: `ar, ai, br, bi` (`w+1` bits each), `wr, wi` (`w` bits each).
/// Outputs: `xr, xi, yr, yi` (`w+2` bits each).
pub fn butterfly(w: usize) -> Aig {
    assert!(w >= 3);
    let aw = w + 1;
    let ow = w + 2;
    let s = w - 1; // twiddle scale Q1.(w-1)
    let mut aig = Aig::new(format!("butterfly{w}"));
    let ar = aig.add_inputs("ar", aw);
    let ai = aig.add_inputs("ai", aw);
    let br = aig.add_inputs("br", aw);
    let bi = aig.add_inputs("bi", aw);
    let wr = aig.add_inputs("wr", w);
    let wi = aig.add_inputs("wi", w);

    // t = W · B (complex), products scaled by 2^(w-1).
    let brwr = signed_product(&mut aig, &br, &wr);
    let biwi = signed_product(&mut aig, &bi, &wi);
    let brwi = signed_product(&mut aig, &br, &wi);
    let biwr = signed_product(&mut aig, &bi, &wr);
    let pw = aw + w; // full product width
    let tr_full = signed_sub(&mut aig, &brwr, &biwi, pw + 1);
    let ti_full = signed_add(&mut aig, &brwi, &biwr, pw + 1);
    let tr = asr(&tr_full, s, ow);
    let ti = asr(&ti_full, s, ow);

    let xr = signed_add(&mut aig, &ar, &tr, ow);
    let xi = signed_add(&mut aig, &ai, &ti, ow);
    let yr = signed_sub(&mut aig, &ar, &tr, ow);
    let yi = signed_sub(&mut aig, &ai, &ti, ow);
    words::output_word(&mut aig, &xr, "xr");
    words::output_word(&mut aig, &xi, "xi");
    words::output_word(&mut aig, &yr, "yr");
    words::output_word(&mut aig, &yi, "yi");
    als_aig::edit::sweep_dangling(&mut aig);
    aig
}

/// Bit-exact spec of [`butterfly`] on plain integers. Inputs and outputs
/// are two's-complement words packed little-endian in declaration order.
pub fn butterfly_spec(
    ar: i64,
    ai: i64,
    br: i64,
    bi: i64,
    wr: i64,
    wi: i64,
    w: usize,
) -> (i64, i64, i64, i64) {
    let s = w - 1;
    let shr = |v: i64| v >> s;
    let tr = shr(br * wr - bi * wi);
    let ti = shr(br * wi + bi * wr);
    let ow = w + 2;
    let wrap = |v: i64| {
        let m = 1i64 << ow;
        let r = v.rem_euclid(m);
        if r >= m / 2 {
            r - m
        } else {
            r
        }
    };
    (wrap(ar + tr), wrap(ai + ti), wrap(ar - tr), wrap(ai - ti))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{decode, random_io_words};

    fn as_signed(v: u128, bits: usize) -> i64 {
        let v = v as i64;
        if v >> (bits - 1) & 1 == 1 {
            v - (1 << bits)
        } else {
            v
        }
    }

    #[test]
    fn paper_profile_w16() {
        let aig = butterfly(16);
        assert_eq!(aig.num_inputs(), 100);
        assert_eq!(aig.num_outputs(), 72);
        assert!(aig.num_ands() > 4000 && aig.num_ands() < 16_000, "{}", aig.num_ands());
    }

    #[test]
    fn small_butterfly_matches_spec() {
        let w = 4;
        let aig = butterfly(w);
        als_aig::check::check(&aig).unwrap();
        let aw = w + 1;
        let ow = w + 2;
        for (inputs, out) in random_io_words(&aig, 4, 5) {
            let mut pos = 0;
            let mut take = |n: usize, inputs: &[bool]| {
                let v = decode(&inputs[pos..pos + n]);
                pos += n;
                v
            };
            let ar = as_signed(take(aw, &inputs), aw);
            let ai = as_signed(take(aw, &inputs), aw);
            let br = as_signed(take(aw, &inputs), aw);
            let bi = as_signed(take(aw, &inputs), aw);
            let wr = as_signed(take(w, &inputs), w);
            let wi = as_signed(take(w, &inputs), w);
            let (xr, xi, yr, yi) = butterfly_spec(ar, ai, br, bi, wr, wi, w);
            let got_xr = as_signed(out & ((1 << ow) - 1), ow);
            let got_xi = as_signed(out >> ow & ((1 << ow) - 1), ow);
            let got_yr = as_signed(out >> (2 * ow) & ((1 << ow) - 1), ow);
            let got_yi = as_signed(out >> (3 * ow) & ((1 << ow) - 1), ow);
            assert_eq!((got_xr, got_xi, got_yr, got_yi), (xr, xi, yr, yi));
        }
    }

    #[test]
    fn zero_twiddle_passes_a_through() {
        let (xr, xi, yr, yi) = butterfly_spec(5, -3, 7, 2, 0, 0, 8);
        assert_eq!((xr, xi, yr, yi), (5, -3, 5, -3));
    }

    #[test]
    fn unit_twiddle_adds_b() {
        let w = 8;
        let unit = 1i64 << (w - 1); // careful: this is -128 in w bits? use w-1 scale
                                    // W = (unit, 0) represents 1.0 in Q1.(w-1)... but unit = 2^(w-1) is
                                    // out of range for signed w bits; use the largest positive value and
                                    // accept the tiny scale error: W ≈ 0.992.
        let wmax = unit - 1;
        let (xr, _, yr, _) = butterfly_spec(10, 0, 64, 0, wmax, 0, w);
        // t ≈ 64 * 0.992 = 63
        assert_eq!(xr, 10 + 63);
        assert_eq!(yr, 10 - 63);
    }
}
